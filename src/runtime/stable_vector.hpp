// StableVector<T>: append-only chunked storage with lock-free reads.
//
// The interning arenas (core/view.hpp, core/state.hpp) hand out dense ids
// and are read on every hot-path operation — agree_modulo alone reads two
// GlobalStates per evaluated ~s pair. Under the parallel runtime those
// reads race with appends from concurrent layer computations, and a
// std::vector would both invalidate references on growth and trip TSan on
// its internal bookkeeping. StableVector fixes the storage into 1024-element
// chunks hung off a two-level directory of atomic pointers: elements never
// move, readers take zero locks, and the only synchronisation requirement
// is the arenas' own invariant that an id is published (through the intern
// mutex or a join) before anyone reads it.
//
// Writers must serialize push_back externally (the arenas' intern mutex
// does); readers need no synchronisation beyond having received the index
// through a happens-before edge with its push_back.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace lacon::runtime {

template <typename T>
class StableVector {
  static constexpr std::size_t kChunkBits = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  static constexpr std::size_t kTableBits = 8;
  static constexpr std::size_t kTableSize = std::size_t{1} << kTableBits;

  struct Table {
    std::atomic<T*> chunks[kTableSize] = {};
  };

 public:
  static constexpr std::size_t kMaxSize = kTableSize * kTableSize * kChunkSize;

  StableVector() = default;
  ~StableVector() {
    for (std::size_t t = 0; t < kTableSize; ++t) {
      Table* table = tables_[t].load(std::memory_order_relaxed);
      if (table == nullptr) continue;
      for (std::size_t c = 0; c < kTableSize; ++c) {
        delete[] table->chunks[c].load(std::memory_order_relaxed);
      }
      delete table;
    }
  }

  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  // Appends a value and returns its index. Callers must serialize.
  std::size_t push_back(T value) {
    const std::size_t i = size_.load(std::memory_order_relaxed);
    assert(i < kMaxSize && "StableVector capacity exhausted");
    T* chunk = chunk_for(i);
    chunk[i & kChunkMask] = std::move(value);
    size_.store(i + 1, std::memory_order_release);
    return i;
  }

  const T& operator[](std::size_t i) const {
    assert(i < size());
    const Table* table =
        tables_[i >> (kChunkBits + kTableBits)].load(std::memory_order_acquire);
    const T* chunk =
        table->chunks[(i >> kChunkBits) & (kTableSize - 1)].load(
            std::memory_order_acquire);
    return chunk[i & kChunkMask];
  }

 private:
  T* chunk_for(std::size_t i) {
    const std::size_t t = i >> (kChunkBits + kTableBits);
    Table* table = tables_[t].load(std::memory_order_relaxed);
    if (table == nullptr) {
      table = new Table();
      tables_[t].store(table, std::memory_order_release);
    }
    const std::size_t c = (i >> kChunkBits) & (kTableSize - 1);
    T* chunk = table->chunks[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new T[kChunkSize]();
      table->chunks[c].store(chunk, std::memory_order_release);
    }
    return chunk;
  }

  std::atomic<Table*> tables_[kTableSize] = {};
  std::atomic<std::size_t> size_{0};
};

// ConcurrentSlotVector<T>: the fully concurrent sibling of StableVector.
//
// Where StableVector requires writers to serialize push_back, the sharded
// arenas (core/state.hpp, core/view.hpp) claim indices with an atomic
// counter *outside* any lock and then write the slot — so slots are written
// out of order and by racing threads. This class provides exactly that:
// slot(i) materialises the backing chunk with a CAS (losers free their
// allocation) and returns a reference the caller may write.
//
// There is no size(): index validity is the caller's contract. A reader must
// have received the index through a happens-before edge with the slot's
// write (the arenas publish ids through their shard mutex, a pool join, or a
// program-order return value); operator[] then reads lock-free. try_get()
// additionally tolerates indices whose chunk was never created (returns
// nullptr) — used only by destructors and debug sweeps.
template <typename T>
class ConcurrentSlotVector {
  static constexpr std::size_t kChunkBits = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  static constexpr std::size_t kTableBits = 8;
  static constexpr std::size_t kTableSize = std::size_t{1} << kTableBits;

  struct Table {
    std::atomic<T*> chunks[kTableSize] = {};
  };

 public:
  static constexpr std::size_t kMaxSize = kTableSize * kTableSize * kChunkSize;

  ConcurrentSlotVector() = default;
  ~ConcurrentSlotVector() {
    for (std::size_t t = 0; t < kTableSize; ++t) {
      Table* table = tables_[t].load(std::memory_order_relaxed);
      if (table == nullptr) continue;
      for (std::size_t c = 0; c < kTableSize; ++c) {
        delete[] table->chunks[c].load(std::memory_order_relaxed);
      }
      delete table;
    }
  }

  ConcurrentSlotVector(const ConcurrentSlotVector&) = delete;
  ConcurrentSlotVector& operator=(const ConcurrentSlotVector&) = delete;

  // Returns a writable reference to slot i, creating the backing chunk if
  // needed. Safe to call concurrently for any mix of indices; the caller is
  // responsible for not writing the same slot from two threads.
  T& slot(std::size_t i) {
    assert(i < kMaxSize && "ConcurrentSlotVector capacity exhausted");
    return chunk_for(i)[i & kChunkMask];
  }

  const T& operator[](std::size_t i) const {
    const Table* table =
        tables_[i >> (kChunkBits + kTableBits)].load(std::memory_order_acquire);
    const T* chunk =
        table->chunks[(i >> kChunkBits) & (kTableSize - 1)].load(
            std::memory_order_acquire);
    return chunk[i & kChunkMask];
  }

  // Like operator[] but tolerates slots whose chunk was never materialised.
  const T* try_get(std::size_t i) const {
    if (i >= kMaxSize) return nullptr;
    const Table* table =
        tables_[i >> (kChunkBits + kTableBits)].load(std::memory_order_acquire);
    if (table == nullptr) return nullptr;
    const T* chunk =
        table->chunks[(i >> kChunkBits) & (kTableSize - 1)].load(
            std::memory_order_acquire);
    if (chunk == nullptr) return nullptr;
    return &chunk[i & kChunkMask];
  }

 private:
  T* chunk_for(std::size_t i) {
    const std::size_t t = i >> (kChunkBits + kTableBits);
    Table* table = tables_[t].load(std::memory_order_acquire);
    if (table == nullptr) {
      Table* fresh = new Table();
      if (tables_[t].compare_exchange_strong(table, fresh,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        table = fresh;
      } else {
        delete fresh;  // `table` now holds the winner
      }
    }
    const std::size_t c = (i >> kChunkBits) & (kTableSize - 1);
    T* chunk = table->chunks[c].load(std::memory_order_acquire);
    if (chunk == nullptr) {
      T* fresh = new T[kChunkSize]();
      if (table->chunks[c].compare_exchange_strong(chunk, fresh,
                                                   std::memory_order_acq_rel,
                                                   std::memory_order_acquire)) {
        chunk = fresh;
      } else {
        delete[] fresh;
      }
    }
    return chunk;
  }

  std::atomic<Table*> tables_[kTableSize] = {};
};

}  // namespace lacon::runtime
