// StableVector<T>: append-only chunked storage with lock-free reads.
//
// The interning arenas (core/view.hpp, core/state.hpp) hand out dense ids
// and are read on every hot-path operation — agree_modulo alone reads two
// GlobalStates per evaluated ~s pair. Under the parallel runtime those
// reads race with appends from concurrent layer computations, and a
// std::vector would both invalidate references on growth and trip TSan on
// its internal bookkeeping. StableVector fixes the storage into 1024-element
// chunks hung off a two-level directory of atomic pointers: elements never
// move, readers take zero locks, and the only synchronisation requirement
// is the arenas' own invariant that an id is published (through the intern
// mutex or a join) before anyone reads it.
//
// Writers must serialize push_back externally (the arenas' intern mutex
// does); readers need no synchronisation beyond having received the index
// through a happens-before edge with its push_back.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace lacon::runtime {

template <typename T>
class StableVector {
  static constexpr std::size_t kChunkBits = 10;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  static constexpr std::size_t kTableBits = 8;
  static constexpr std::size_t kTableSize = std::size_t{1} << kTableBits;

  struct Table {
    std::atomic<T*> chunks[kTableSize] = {};
  };

 public:
  static constexpr std::size_t kMaxSize = kTableSize * kTableSize * kChunkSize;

  StableVector() = default;
  ~StableVector() {
    for (std::size_t t = 0; t < kTableSize; ++t) {
      Table* table = tables_[t].load(std::memory_order_relaxed);
      if (table == nullptr) continue;
      for (std::size_t c = 0; c < kTableSize; ++c) {
        delete[] table->chunks[c].load(std::memory_order_relaxed);
      }
      delete table;
    }
  }

  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  // Appends a value and returns its index. Callers must serialize.
  std::size_t push_back(T value) {
    const std::size_t i = size_.load(std::memory_order_relaxed);
    assert(i < kMaxSize && "StableVector capacity exhausted");
    T* chunk = chunk_for(i);
    chunk[i & kChunkMask] = std::move(value);
    size_.store(i + 1, std::memory_order_release);
    return i;
  }

  const T& operator[](std::size_t i) const {
    assert(i < size());
    const Table* table =
        tables_[i >> (kChunkBits + kTableBits)].load(std::memory_order_acquire);
    const T* chunk =
        table->chunks[(i >> kChunkBits) & (kTableSize - 1)].load(
            std::memory_order_acquire);
    return chunk[i & kChunkMask];
  }

 private:
  T* chunk_for(std::size_t i) {
    const std::size_t t = i >> (kChunkBits + kTableBits);
    Table* table = tables_[t].load(std::memory_order_relaxed);
    if (table == nullptr) {
      table = new Table();
      tables_[t].store(table, std::memory_order_release);
    }
    const std::size_t c = (i >> kChunkBits) & (kTableSize - 1);
    T* chunk = table->chunks[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new T[kChunkSize]();
      table->chunks[c].store(chunk, std::memory_order_release);
    }
    return chunk;
  }

  std::atomic<Table*> tables_[kTableSize] = {};
  std::atomic<std::size_t> size_{0};
};

}  // namespace lacon::runtime
