#include "runtime/stats.hpp"

#include <algorithm>

namespace lacon::runtime {

Stats& Stats::global() {
  static Stats* instance = new Stats();  // leaked: outlives all users
  return *instance;
}

Counter& Stats::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Timer& Stats::timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<Timer>()).first;
  }
  return *it->second;
}

Histogram& Stats::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<StatSample> Stats::snapshot() const {
  std::vector<StatSample> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(counters_.size() + timers_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back(StatSample{name, false, c->value(), 0});
  }
  for (const auto& [name, t] : timers_) {
    out.push_back(StatSample{name, true, t->nanos(), t->count()});
  }
  std::sort(out.begin(), out.end(),
            [](const StatSample& a, const StatSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<HistogramSample> Stats::histogram_snapshot() const {
  std::vector<HistogramSample> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.count = h->count();
    sample.sum = h->sum();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      sample.buckets[b] = h->bucket(b);
    }
    out.push_back(std::move(sample));
  }
  return out;  // map iteration order is already sorted by name
}

void Stats::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, t] : timers_) t->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace lacon::runtime
