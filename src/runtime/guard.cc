#include "runtime/guard.hpp"

#include "runtime/fault.hpp"
#include "runtime/stats.hpp"

namespace lacon::guard {

const char* to_string(TruncationReason reason) noexcept {
  switch (reason) {
    case TruncationReason::kNone:
      return "none";
    case TruncationReason::kDeadline:
      return "deadline";
    case TruncationReason::kStateBudget:
      return "state_budget";
    case TruncationReason::kCancelled:
      return "cancelled";
  }
  return "?";
}

const Guard& Guard::none() noexcept {
  static const Guard inert{InertTag{}};
  return inert;
}

Guard& Guard::with_deadline(std::chrono::milliseconds budget) {
  return with_deadline_at(std::chrono::steady_clock::now() + budget);
}

Guard& Guard::with_deadline_at(std::chrono::steady_clock::time_point deadline) {
  deadline_ = deadline;
  has_deadline_ = true;
  return *this;
}

Guard& Guard::with_state_budget(std::size_t max_states) {
  max_states_ = max_states;
  return *this;
}

Guard& Guard::with_memory_budget(std::size_t max_bytes) {
  max_bytes_ = max_bytes;
  return *this;
}

Guard& Guard::with_token(CancelToken token) {
  token_ = std::move(token);
  has_token_ = true;
  return *this;
}

void Guard::trip(TruncationReason reason) const {
  if (inert_ || reason == TruncationReason::kNone) return;
  std::uint8_t expected = 0;
  if (reason_.compare_exchange_strong(expected,
                                      static_cast<std::uint8_t>(reason),
                                      std::memory_order_acq_rel)) {
    // Count only the first trip per guard, by reason, so runtime_report()
    // shows how many analyses were truncated and why.
    runtime::Stats::global()
        .counter(std::string("guard.trips_") + to_string(reason))
        .increment();
  }
}

bool Guard::tripped() const {
  if (inert_) return false;
  if (reason_.load(std::memory_order_acquire) != 0) return true;
  if (fault::fire(fault::Site::kGuardBudget)) {
    trip(TruncationReason::kStateBudget);
    return true;
  }
  if (has_token_ && token_.cancelled()) {
    trip(TruncationReason::kCancelled);
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    trip(TruncationReason::kDeadline);
    return true;
  }
  return false;
}

TruncationReason Guard::check(std::size_t states_in_use,
                              std::size_t bytes_in_use) const {
  if (inert_) return TruncationReason::kNone;
  // Boundary checks are rare (depth/level granularity), so one always-on
  // counter shows how often the engine offered a preemption point.
  static runtime::Counter& checks =
      runtime::Stats::global().counter("guard.checks");
  checks.increment();
  if ((max_states_ != 0 && states_in_use > max_states_) ||
      (max_bytes_ != 0 && bytes_in_use > max_bytes_)) {
    trip(TruncationReason::kStateBudget);
    return reason();
  }
  tripped();
  return reason();
}

GuardSpec& process_guard_spec() noexcept {
  static GuardSpec spec;
  return spec;
}

ScopedGuard::ScopedGuard(const GuardSpec& spec) : spec_(spec) {
  if (spec_.budget_ms > 0) {
    guard_.with_deadline(std::chrono::milliseconds(spec_.budget_ms));
  }
  if (spec_.max_states > 0) guard_.with_state_budget(spec_.max_states);
  if (spec_.max_bytes > 0) guard_.with_memory_budget(spec_.max_bytes);
}

}  // namespace lacon::guard
