// Structured span tracing and unified metrics export (lacon::trace).
//
// The Stats registry (runtime/stats.hpp) answers *what happened* — how many
// layers expanded, how many candidate pairs the similarity index confirmed —
// but not *when or on which worker*. This layer adds that dimension:
//
//  * Spans. A LACON_TRACE_SPAN(category, name) statement times the enclosing
//    scope. In `counters` mode the duration feeds a log2-bucketed Histogram
//    named "span.<category>.<name>"; in `spans` mode a begin/end event with
//    thread attribution and nesting depth is additionally appended to the
//    emitting thread's own buffer. LACON_TRACE_PHASE additionally publishes
//    the site as the *current phase*, which the parallel runtime's chunk
//    dispatcher inherits — so the worker-side chunks of an explore / ~s-sweep
//    / valence section show up under that phase's name, per worker.
//
//  * Exporters. chrome_trace_json() renders the collected spans as Chrome
//    trace-event JSON (load it in Perfetto or chrome://tracing);
//    MetricsSnapshot::capture() merges the configured worker count, the
//    guard spec and its trip counters, every Stats counter/timer, every
//    histogram and the span-buffer totals into one JSON document
//    ("lacon.metrics.v1") that the bench harnesses emit next to each
//    BENCH_*.json.
//
// Modes and the off-path contract:
//
//  * LACON_TRACE=off (default): ScopedSpan's constructor performs one
//    relaxed atomic load and a predictable branch — no clock read, no
//    allocation, no stats lookup. The t9/t10 bench regression gate runs in
//    this configuration, so span placement in hot paths is free when off.
//    Defining LACON_TRACE_COMPILED_OUT removes the macros entirely
//    (compile-to-nothing) for builds that must prove the zero-cost claim.
//  * LACON_TRACE=counters: durations are histogrammed; no events buffered.
//  * LACON_TRACE=spans: durations are histogrammed AND events are recorded
//    into per-thread lock-free buffers (chunked arrays; the emit path is one
//    slot write plus a release store of the published size — a mutex is
//    only taken on the cold chunk-roll and by readers).
//
// Thread model: emission is safe from any thread at any time. collect() and
// the exporters may run concurrently with emission (they read each buffer's
// published prefix), but clear()/set_mode() must only run while no parallel
// section is in flight. Buffers of exited threads are retired, not lost:
// their events stay exportable for the life of the process.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/stats.hpp"

namespace lacon::trace {

enum class Mode : std::uint8_t { kOff = 0, kCounters, kSpans };

const char* to_string(Mode mode) noexcept;

// Parses a LACON_TRACE-style value: "off" | "counters" | "spans". Malformed
// values earn a one-line stderr warning (once per process) and fall back.
Mode parse_mode(const char* text, Mode fallback) noexcept;

namespace detail {
// 0 = not yet initialized from the environment; otherwise Mode + 1.
extern std::atomic<std::uint8_t> g_mode_plus_one;
Mode mode_slow() noexcept;  // parses LACON_TRACE, publishes, returns
}  // namespace detail

// The active mode; first call reads LACON_TRACE. One relaxed load after
// initialization — this is the whole cost of a span site when tracing is
// off.
inline Mode mode() noexcept {
  const std::uint8_t m =
      detail::g_mode_plus_one.load(std::memory_order_relaxed);
  if (m == 0) return detail::mode_slow();
  return static_cast<Mode>(m - 1);
}

// Overrides the mode (tests, harnesses). Call only while no parallel
// section is in flight; spans already buffered are kept until clear().
void set_mode(Mode mode) noexcept;

// Sentinel for "no numeric payload attached to this span".
inline constexpr std::uint64_t kNoArg = ~std::uint64_t{0};

// A span call site: one constant-initialized static per LACON_TRACE_SPAN
// statement, so emission never allocates or re-parses names. The duration
// histogram "span.<category>.<name>" is resolved lazily on first record.
struct SpanSite {
  const char* category;
  const char* name;
  std::atomic<runtime::Histogram*> hist{nullptr};

  constexpr SpanSite(const char* category_in, const char* name_in) noexcept
      : category(category_in), name(name_in) {}
  SpanSite(const SpanSite&) = delete;
  SpanSite& operator=(const SpanSite&) = delete;

  runtime::Histogram& histogram();
};

// RAII span: times construction-to-destruction against a site. All real
// work happens out of line and only when tracing is on.
class ScopedSpan {
 public:
  explicit ScopedSpan(SpanSite& site, std::uint64_t arg = kNoArg) noexcept {
    if (mode() != Mode::kOff) begin(&site, arg);
  }
  // Pointer form for dynamically-selected sites (the pool's chunk dispatcher
  // tracing under the current phase); null site records nothing.
  ScopedSpan(SpanSite* site, std::uint64_t arg) noexcept {
    if (site != nullptr && mode() != Mode::kOff) begin(site, arg);
  }
  ~ScopedSpan() {
    if (site_ != nullptr) finish();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void begin(SpanSite* site, std::uint64_t arg) noexcept;
  void finish() noexcept;

  SpanSite* site_ = nullptr;
  void* thread_state_ = nullptr;  // set iff the span buffers an event
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = kNoArg;
  std::uint32_t depth_ = 0;
};

// A span that also publishes its site as the process-wide *current phase*
// for its lifetime. The parallel runtime's chunk dispatcher attributes
// worker-side chunk spans to the current phase, giving per-worker
// explore/similarity/valence spans without instrumenting every chunk body.
// Phases follow the engine's call structure: one top-level analysis at a
// time, nested parallel sections inherit the innermost phase.
class PhaseScope {
 public:
  explicit PhaseScope(SpanSite& site, std::uint64_t arg = kNoArg) noexcept;
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  ScopedSpan span_;
  SpanSite* prev_ = nullptr;
  bool set_ = false;
};

// The innermost live PhaseScope's site, or null outside any phase.
SpanSite* current_phase() noexcept;

// Records a zero-duration instant event (e.g. a work-steal) in spans mode;
// in counters mode it only bumps the site histogram with a zero value.
void instant(SpanSite& site, std::uint64_t arg = kNoArg) noexcept;

// One collected span event, ready for export. Times are nanoseconds since
// the process trace epoch (first clock use).
struct CollectedSpan {
  const char* category = nullptr;
  const char* name = nullptr;
  std::uint32_t tid = 0;    // dense per-process trace thread id
  std::uint32_t depth = 0;  // nesting level on the emitting thread
  bool is_instant = false;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = kNoArg;
};

// Snapshot of every buffered span (live and retired threads), sorted by
// (start_ns, tid). Non-destructive; safe concurrently with emission.
std::vector<CollectedSpan> collect();

// Drops all buffered spans (live and retired) and the dropped-span count.
// Only call while no parallel section is in flight.
void clear();

// Totals across all buffers: events currently held / events dropped by the
// per-thread cap.
std::size_t spans_recorded();
std::size_t spans_dropped() noexcept;

// Chrome trace-event JSON ("traceEvents" array of "X"/"i" events plus
// thread-name metadata). Loadable in Perfetto / chrome://tracing.
std::string chrome_trace_json();
bool write_chrome_trace(const std::string& path);

// The unified machine-readable export: one JSON document merging the
// runtime configuration, guard state, every Stats counter/timer/histogram
// and the span totals. Schema "lacon.metrics.v1"; see DESIGN.md §11 for the
// field-by-field contract. Deterministic for deterministic inputs: keys are
// sorted, so two runs that record the same stats serialize identically.
struct MetricsSnapshot {
  unsigned workers = 0;
  Mode trace_mode = Mode::kOff;
  std::int64_t guard_budget_ms = 0;
  std::uint64_t guard_max_states = 0;
  std::uint64_t guard_max_bytes = 0;
  std::vector<runtime::StatSample> stats;            // sorted by name
  std::vector<runtime::HistogramSample> histograms;  // sorted by name
  std::uint64_t spans_recorded = 0;
  std::uint64_t spans_dropped = 0;

  static MetricsSnapshot capture();
  std::string to_json() const;
};

std::string metrics_snapshot_json();
bool write_metrics_snapshot(const std::string& path);

// Honors the artifact knobs: writes the MetricsSnapshot to
// $LACON_METRICS_FILE (if set) and, in spans mode, the Chrome trace to
// $LACON_TRACE_FILE (if set). The bench harnesses call this at exit;
// bench/run_all.sh points both knobs next to each BENCH_*.json.
void write_env_artifacts();

}  // namespace lacon::trace

// Span macros. Each expands to a constant-initialized static site (no
// thread-safe-static guard) plus an RAII span over the enclosing scope.
// With LACON_TRACE_COMPILED_OUT defined they expand to nothing, proving the
// off-path zero-cost contract at the strongest possible level.
#define LACON_TRACE_CAT_(a, b) a##b
#define LACON_TRACE_CAT(a, b) LACON_TRACE_CAT_(a, b)

#if defined(LACON_TRACE_COMPILED_OUT)
#define LACON_TRACE_SPAN(category, name) static_assert(true)
#define LACON_TRACE_SPAN_ARG(category, name, arg_value) static_assert(true)
#define LACON_TRACE_PHASE(category, name, arg_value) static_assert(true)
#else
#define LACON_TRACE_SPAN(category, name)                                   \
  static constinit ::lacon::trace::SpanSite LACON_TRACE_CAT(               \
      lacon_trace_site_, __LINE__){category, name};                        \
  const ::lacon::trace::ScopedSpan LACON_TRACE_CAT(                        \
      lacon_trace_span_, __LINE__){LACON_TRACE_CAT(lacon_trace_site_,      \
                                                   __LINE__)}
#define LACON_TRACE_SPAN_ARG(category, name, arg_value)                    \
  static constinit ::lacon::trace::SpanSite LACON_TRACE_CAT(               \
      lacon_trace_site_, __LINE__){category, name};                        \
  const ::lacon::trace::ScopedSpan LACON_TRACE_CAT(                        \
      lacon_trace_span_, __LINE__){                                        \
      LACON_TRACE_CAT(lacon_trace_site_, __LINE__),                        \
      static_cast<std::uint64_t>(arg_value)}
#define LACON_TRACE_PHASE(category, name, arg_value)                       \
  static constinit ::lacon::trace::SpanSite LACON_TRACE_CAT(               \
      lacon_trace_site_, __LINE__){category, name};                        \
  const ::lacon::trace::PhaseScope LACON_TRACE_CAT(                        \
      lacon_trace_phase_, __LINE__){                                       \
      LACON_TRACE_CAT(lacon_trace_site_, __LINE__),                        \
      static_cast<std::uint64_t>(arg_value)}
#endif
