// A small work-stealing thread pool shared by the analysis runtime.
//
// Each worker owns a deque: it pushes and pops work at the front and steals
// from the back of other workers' deques when its own runs dry. External
// submitters distribute tasks round-robin across the worker deques. Threads
// that wait for a batch of tasks (see parallel.hpp) help drain the queues
// instead of blocking, so nested parallel sections cannot deadlock.
//
// The process-wide pool is sized by the LACON_THREADS environment variable
// (default: std::thread::hardware_concurrency; malformed values warn once
// and fall back). A worker count of 1 means fully serial execution: the
// parallel facades then run inline on the calling thread and the pool
// spawns no threads at all. set_worker_count() / WorkerCountOverride
// resize the pool programmatically (tests sweep 1 vs 4+ workers this way).
//
// What is and is not deterministic: *which* worker runs a task, and how
// often stealing happens, race by design — only the facades' ordered-chunk
// merging (parallel.hpp) makes analysis output worker-count-independent.
// The pool's own observability is therefore explicitly scheduling-
// dependent: the pool.submitted / pool.tasks_run / pool.steals counters
// (always on, relaxed atomics) and, under LACON_TRACE=spans, a "pool.task"
// span per dequeued task plus a "pool.steal" instant per successful steal
// (runtime/trace.hpp) — useful for watching load balance in Perfetto,
// never part of any equivalence contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lacon::runtime {

class ThreadPool {
 public:
  // `workers` is the parallelism degree. The pool spawns `workers - 1`
  // threads; the caller of a parallel section acts as the remaining worker.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned workers() const noexcept { return workers_; }

  // Enqueues a task. Tasks must not block waiting for other queued tasks
  // except via `run_one()`-style helping (parallel.hpp does this correctly).
  void submit(std::function<void()> task);

  // Runs one queued task on the calling thread, if any is available (the
  // caller first drains its own deque, then steals). Returns false when
  // every deque was empty.
  bool run_one();

  // Blocks until a task is available or `stop` was requested. Used by the
  // worker loop; waiting helpers should prefer run_one() + yield.
  void worker_loop(std::size_t self);

 private:
  struct Deque {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  bool pop_front(std::size_t q, std::function<void()>& task);
  bool steal_back(std::size_t thief, std::function<void()>& task);

  unsigned workers_;
  std::vector<std::unique_ptr<Deque>> deques_;
  std::vector<std::thread> threads_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> next_queue_{0};  // round-robin submit cursor
  std::atomic<std::size_t> pending_{0};     // queued-but-untaken tasks
  bool stop_ = false;  // guarded by idle_mu_
};

// Parses a LACON_THREADS-style value: a positive integer, clamped to
// [1, 256]. Returns `fallback` when `text` is null, empty or malformed.
unsigned parse_worker_env(const char* text, unsigned fallback);

// The configured parallelism degree: LACON_THREADS if set and valid,
// otherwise hardware_concurrency (at least 1). An explicit
// set_worker_count() overrides both until reset.
unsigned worker_count();

// Overrides the worker count and rebuilds the global pool. Must not be
// called while parallel sections are executing; intended for tests, benches
// and command-line flags. `workers == 0` restores the environment default.
void set_worker_count(unsigned workers);

// The process-wide pool, created on first use with worker_count() workers.
ThreadPool& global_pool();

// RAII worker-count override used by tests and the serial-vs-parallel
// equivalence harness.
class WorkerCountOverride {
 public:
  explicit WorkerCountOverride(unsigned workers);
  ~WorkerCountOverride();
  WorkerCountOverride(const WorkerCountOverride&) = delete;
  WorkerCountOverride& operator=(const WorkerCountOverride&) = delete;

 private:
  unsigned previous_;
};

}  // namespace lacon::runtime
