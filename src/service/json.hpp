// Minimal JSON for the laconrd wire protocol (service/protocol.hpp).
//
// The daemon speaks newline-delimited JSON over a Unix socket; pulling in a
// JSON library is off the table (the repo vendors nothing), and the protocol
// needs only the core data model. This is a small recursive-descent parser
// plus a serializer over a variant value type:
//
//  * Numbers parse as double; integral values serialize without a decimal
//    point, so ids and counts round-trip as written.
//  * Object member order is preserved (vector of pairs, not a map), so a
//    response serializes in the order it was assembled — stable output for
//    golden tests.
//  * Json::raw() splices pre-serialized text verbatim into dump() output;
//    the protocol uses it to embed a MetricsSnapshot::to_json() document
//    without re-parsing it.
//  * parse() rejects trailing garbage and caps nesting depth, so a
//    malformed or adversarial request line cannot recurse the daemon into
//    a stack overflow.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace lacon::service {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject, kRaw };

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}  // NOLINT: implicit by design
  Json(bool b) : v_(b) {}                // NOLINT
  Json(double d) : v_(d) {}              // NOLINT
  Json(int i) : v_(static_cast<double>(i)) {}            // NOLINT
  Json(std::int64_t i) : v_(static_cast<double>(i)) {}   // NOLINT
  Json(std::uint64_t u) : v_(static_cast<double>(u)) {}  // NOLINT
  Json(const char* s) : v_(std::string(s)) {}            // NOLINT
  Json(std::string s) : v_(std::move(s)) {}              // NOLINT
  Json(Array a) : v_(std::move(a)) {}                    // NOLINT
  Json(Object o) : v_(std::move(o)) {}                   // NOLINT

  // Pre-serialized JSON text, spliced verbatim by dump().
  static Json raw(std::string text);

  Type type() const noexcept;
  bool is_null() const noexcept { return type() == Type::kNull; }
  bool is_bool() const noexcept { return type() == Type::kBool; }
  bool is_number() const noexcept { return type() == Type::kNumber; }
  bool is_string() const noexcept { return type() == Type::kString; }
  bool is_array() const noexcept { return type() == Type::kArray; }
  bool is_object() const noexcept { return type() == Type::kObject; }

  bool as_bool(bool fallback = false) const noexcept;
  double as_number(double fallback = 0.0) const noexcept;
  const std::string& as_string() const;  // empty string when not a string
  const Array& as_array() const;         // empty array when not an array
  const Object& as_object() const;       // empty object when not an object

  // First member named `key`, or nullptr.
  const Json* find(std::string_view key) const;

  // Member access for building objects/arrays in place.
  Object& object();  // converts to an (empty) object if not one
  Array& array();    // converts to an (empty) array if not one
  void set(std::string key, Json value);

  std::string dump() const;

  // Parses exactly one JSON document; trailing non-whitespace, invalid
  // escapes, or nesting beyond an internal depth cap yield nullopt and (if
  // `error` is non-null) a one-line description with a byte offset.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  struct RawTag {
    std::string text;
  };
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object,
               RawTag>
      v_;
};

// Escapes `s` for inclusion in a JSON string literal (no surrounding
// quotes). Exposed for hand-assembled fragments in tests.
std::string json_escape(std::string_view s);

}  // namespace lacon::service
