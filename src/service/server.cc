#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "runtime/stats.hpp"

namespace lacon::service {

namespace {

using Clock = std::chrono::steady_clock;

bool fill_addr(const std::string& path, sockaddr_un* addr, std::string* error) {
  if (path.empty() || path.size() >= sizeof addr->sun_path) {
    if (error != nullptr) *error = "socket path empty or too long: " + path;
    return false;
  }
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

// All daemon-side writes go through send+MSG_NOSIGNAL: a client that closed
// its end mid-response costs an EPIPE return, never a SIGPIPE.
bool send_all(int fd, const char* data, std::size_t bytes) {
  while (bytes > 0) {
    const ssize_t n = ::send(fd, data, bytes, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

constexpr char kOverloadedResponse[] =
    "{\"id\":null,\"status\":\"error\",\"error\":\"overloaded\"}\n";
constexpr char kIdleTimeoutResponse[] =
    "{\"id\":null,\"status\":\"error\",\"error\":\"idle timeout\"}\n";
constexpr char kLineTooLongResponse[] =
    "{\"id\":null,\"status\":\"error\",\"error\":\"request line too "
    "long\"}\n";

// Milliseconds left until `deadline`, for poll(): never negative, and -1
// (poll's "wait forever") when no deadline was set.
int remaining_ms(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

bool fail_errno(std::string* error, const std::string& what, int err) {
  if (error != nullptr) *error = what + ": " + std::strerror(err);
  return false;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  sockaddr_un addr;
  if (!fill_addr(options_.socket_path, &addr, error)) return false;

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A previous run's socket file would make bind fail with EADDRINUSE even
  // though nobody is listening; a stale *live* listener is the caller's
  // configuration error either way, so replace unconditionally.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, options_.backlog) < 0) {
    if (error != nullptr) {
      *error = std::string("bind/listen on ") + options_.socket_path + ": " +
               std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Kick every live connection out of its poll: shutdown makes the next
  // poll/read return immediately (POLLHUP / 0), so idle clients cannot
  // stall the join. The fds stay open until after the joins — a thread may
  // still be mid-read on one, and closing first would race fd reuse.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const auto& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (const auto& conn : connections) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
  ::unlink(options_.socket_path.c_str());
}

void Server::reap_finished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) ::close(conn->fd);
  }
}

void Server::accept_loop() {
  auto& stats = runtime::Stats::global();
  while (!stopping_.load(std::memory_order_acquire)) {
    reap_finished();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    bool overloaded;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      overloaded = connections_.size() >= options_.max_connections;
    }
    if (overloaded) {
      // Shed instead of queueing: a bounded worker set keeps one greedy
      // client population from starving the daemon of threads, and the
      // typed error lets well-behaved clients back off and retry.
      send_all(fd, kOverloadedResponse, sizeof kOverloadedResponse - 1);
      ::close(fd);
      stats.counter("service.connections_shed").increment();
      continue;
    }

    stats.counter("service.connections").increment();
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { serve_connection(raw); });
  }
}

void Server::serve_connection(Connection* conn) {
  const int fd = conn->fd;
  std::string buffer;
  char chunk[4096];
  auto last_activity = Clock::now();

  while (!stopping_.load(std::memory_order_acquire)) {
    // Short poll ticks instead of a blocking read: stop() and the idle
    // deadline are both observed within ~100ms no matter how quiet the
    // client is.
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      if (options_.idle_timeout_ms > 0 &&
          Clock::now() - last_activity >=
              std::chrono::milliseconds(options_.idle_timeout_ms)) {
        send_all(fd, kIdleTimeoutResponse, sizeof kIdleTimeoutResponse - 1);
        runtime::Stats::global()
            .counter("service.connections_idle_closed")
            .increment();
        break;
      }
      continue;
    }
    if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    last_activity = Clock::now();

    // Pipelining: every complete line the chunk delivered is one batch.
    // handle_batch executes the requests in order and group-commits each
    // touched session ONCE, so a client that writes k requests back to
    // back pays one WAL fsync, not k — and the responses (sent below, in
    // request order) still only hit the wire after that commit.
    std::size_t start = 0;
    std::vector<std::string> lines;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;
      if (line.empty()) continue;
      lines.emplace_back(line);
    }
    buffer.erase(0, start);
    if (!lines.empty()) {
      if (lines.size() > 1) {
        runtime::Stats::global()
            .counter("service.pipelined_lines")
            .add(lines.size());
      }
      const std::vector<std::string> responses =
          handle_batch(sessions_, lines);
      for (const std::string& r : responses) {
        const std::string framed = r + "\n";
        if (!send_all(fd, framed.data(), framed.size())) {
          conn->done.store(true, std::memory_order_release);
          return;
        }
      }
      last_activity = Clock::now();
    }

    if (buffer.size() > options_.max_line_bytes) {
      send_all(fd, kLineTooLongResponse, sizeof kLineTooLongResponse - 1);
      break;
    }
  }
  conn->done.store(true, std::memory_order_release);
}

bool Server::request(const std::string& socket_path,
                     const std::string& request_line, std::string* response,
                     std::string* error, int timeout_ms) {
  sockaddr_un addr;
  if (!fill_addr(socket_path, &addr, error)) return false;

  const bool has_deadline = timeout_ms > 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(has_deadline ? timeout_ms : 0);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }

  // Non-blocking connect + poll: a daemon that accepted its backlog but
  // stopped accepting can otherwise park the client in connect() forever.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (errno != EINPROGRESS && errno != EAGAIN) {
      fail_errno(error, "connect to " + socket_path, errno);
      ::close(fd);
      return false;
    }
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, remaining_ms(has_deadline, deadline));
    if (ready <= 0) {
      fail_errno(error, "connect to " + socket_path,
                 ready == 0 ? ETIMEDOUT : errno);
      ::close(fd);
      return false;
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      fail_errno(error, "connect to " + socket_path,
                 so_error != 0 ? so_error : errno);
      ::close(fd);
      return false;
    }
  }

  const std::string line = request_line + "\n";
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, remaining_ms(has_deadline, deadline));
    if (ready <= 0) {
      fail_errno(error, "write to " + socket_path,
                 ready == 0 ? ETIMEDOUT : errno);
      ::close(fd);
      return false;
    }
    const ssize_t n = ::send(fd, data, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        // The daemon answered and closed before reading our request — the
        // overload-shed path does exactly this. Its parting response is
        // still in our receive buffer; go collect it.
        break;
      }
      fail_errno(error, "write to " + socket_path, errno);
      ::close(fd);
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }

  response->clear();
  char chunk[4096];
  while (response->find('\n') == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, remaining_ms(has_deadline, deadline));
    if (ready <= 0) {
      fail_errno(error, "read from " + socket_path,
                 ready == 0 ? ETIMEDOUT : errno);
      ::close(fd);
      return false;
    }
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if (n <= 0) {
      if (error != nullptr) *error = "connection closed before a response";
      ::close(fd);
      return false;
    }
    response->append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  response->resize(response->find('\n'));
  return true;
}

}  // namespace lacon::service
