#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "runtime/stats.hpp"

namespace lacon::service {

namespace {

bool fill_addr(const std::string& path, sockaddr_un* addr, std::string* error) {
  if (path.empty() || path.size() >= sizeof addr->sun_path) {
    if (error != nullptr) *error = "socket path empty or too long: " + path;
    return false;
  }
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

bool write_all(int fd, const char* data, std::size_t bytes) {
  while (bytes > 0) {
    const ssize_t n = ::write(fd, data, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  sockaddr_un addr;
  if (!fill_addr(options_.socket_path, &addr, error)) return false;

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  // A previous run's socket file would make bind fail with EADDRINUSE even
  // though nobody is listening; a stale *live* listener is the caller's
  // configuration error either way, so replace unconditionally.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, options_.backlog) < 0) {
    if (error != nullptr) {
      *error = std::string("bind/listen on ") + options_.socket_path + ": " +
               std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  ::unlink(options_.socket_path.c_str());
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    runtime::Stats::global().counter("service.connections").increment();
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void Server::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;
      if (line.empty()) continue;
      const std::string response = handle_line(sessions_, line) + "\n";
      if (!write_all(fd, response.data(), response.size())) {
        ::close(fd);
        return;
      }
    }
    buffer.erase(0, start);

    if (buffer.size() > options_.max_line_bytes) {
      const std::string response =
          "{\"id\":null,\"status\":\"error\",\"error\":\"request line too "
          "long\"}\n";
      write_all(fd, response.data(), response.size());
      break;
    }
  }
  ::close(fd);
}

bool Server::request(const std::string& socket_path,
                     const std::string& request_line, std::string* response,
                     std::string* error) {
  sockaddr_un addr;
  if (!fill_addr(socket_path, &addr, error)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (error != nullptr) {
      *error = std::string("connect to ") + socket_path + ": " +
               std::strerror(errno);
    }
    ::close(fd);
    return false;
  }
  const std::string line = request_line + "\n";
  if (!write_all(fd, line.data(), line.size())) {
    if (error != nullptr) *error = std::string("write: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  response->clear();
  char chunk[4096];
  while (response->find('\n') == std::string::npos) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      if (error != nullptr) *error = "connection closed before a response";
      ::close(fd);
      return false;
    }
    response->append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  response->resize(response->find('\n'));
  return true;
}

}  // namespace lacon::service
