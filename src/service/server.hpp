// Unix-domain-socket front end for the laconrd protocol.
//
// One listening AF_UNIX stream socket, one thread per accepted connection,
// newline-delimited requests in / responses out (service/protocol.hpp).
// Thread-per-connection is the right weight class here: each request fans
// out over the work-stealing pool internally, and concurrent parallel
// sections from multiple threads are an explicitly supported mode of the
// runtime (runtime/parallel.hpp) — so two clients analyzing the same
// session genuinely share the interned space, the layer cache and the
// valence memo while each keeps its own per-request guard.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"

namespace lacon::service {

struct ServerOptions {
  std::string socket_path;
  int backlog = 16;
  // Requests are one line; anything longer than this without a newline is
  // answered with an error and the connection dropped.
  std::size_t max_line_bytes = 1 << 20;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket (replacing a stale file at the path), starts the
  // accept loop on a background thread. False + `error` on failure.
  bool start(std::string* error);

  // Stops accepting, closes the listener, joins every connection thread and
  // unlinks the socket file. Idempotent. Does NOT save sessions — shutdown
  // policy (store::env knobs) belongs to the caller (examples/laconrd.cc).
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  SessionManager& sessions() noexcept { return sessions_; }

  // Connects to `socket_path`, sends one request line, returns the response
  // line (without the newline). Used by `laconrd --client` and the tests;
  // false + `error` on connect/IO failure.
  static bool request(const std::string& socket_path,
                      const std::string& request_line, std::string* response,
                      std::string* error);

 private:
  void accept_loop();
  void serve_connection(int fd);

  ServerOptions options_;
  SessionManager sessions_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace lacon::service
