// Unix-domain-socket front end for the laconrd protocol.
//
// One listening AF_UNIX stream socket, one thread per accepted connection,
// newline-delimited requests in / responses out (service/protocol.hpp).
// Thread-per-connection is the right weight class here: each request fans
// out over the work-stealing pool internally, and concurrent parallel
// sections from multiple threads are an explicitly supported mode of the
// runtime (runtime/parallel.hpp) — so two clients analyzing the same
// session genuinely share the interned space, the layer cache and the
// valence memo while each keeps its own per-request guard.
//
// Fault posture: connection threads never block indefinitely — reads go
// through poll with a short tick, so stop() always returns promptly even
// against idle clients (it also ::shutdown()s live fds to kick any read in
// flight). Idle connections past idle_timeout_ms are told so and dropped;
// accepts past max_connections are shed with a JSON "overloaded" error
// instead of queueing unboundedly; every socket write is SIGPIPE-safe
// (send + MSG_NOSIGNAL), so a client vanishing mid-response can never kill
// the daemon; finished connection threads are reaped as the accept loop
// ticks rather than accumulating until shutdown.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"

namespace lacon::service {

struct ServerOptions {
  std::string socket_path;
  int backlog = 16;
  // Requests are one line; anything longer than this without a newline is
  // answered with an error and the connection dropped.
  std::size_t max_line_bytes = 1 << 20;
  // Accepts beyond this many live connections are answered with a JSON
  // "overloaded" error and closed immediately (load shedding, not queueing).
  std::size_t max_connections = 64;
  // A connection with no complete request for this long is sent a JSON
  // "idle timeout" error and dropped. 0 disables the timeout.
  int idle_timeout_ms = 300'000;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds the socket (replacing a stale file at the path), starts the
  // accept loop on a background thread. False + `error` on failure.
  bool start(std::string* error);

  // Stops accepting, closes the listener, shuts down and joins every
  // connection and unlinks the socket file. Returns promptly (worst case a
  // poll tick plus whatever request is mid-flight) even when clients sit
  // idle on open connections. Idempotent. Does NOT save sessions — shutdown
  // policy (store::env knobs) belongs to the caller (examples/laconrd.cc).
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  SessionManager& sessions() noexcept { return sessions_; }

  // Connects to `socket_path`, sends one request line, returns the response
  // line (without the newline). Used by `laconrd --client` and the tests;
  // false + `error` on connect/IO failure. The whole exchange (connect,
  // write, read) shares one `timeout_ms` deadline — on expiry the error
  // carries strerror(ETIMEDOUT), so a hung daemon fails a smoke fast
  // instead of hanging it. timeout_ms <= 0 waits forever.
  static bool request(const std::string& socket_path,
                      const std::string& request_line, std::string* response,
                      std::string* error, int timeout_ms = 30'000);

 private:
  // A connection owns its fd for its whole lifetime: the thread polls and
  // reads it, but only reap/stop — after joining the thread — close it.
  // Closing only after the join is what makes stop()'s ::shutdown of live
  // fds safe against fd-number reuse.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection* conn);
  // Joins and erases finished connections (accept-loop tick + stop()).
  void reap_finished();

  ServerOptions options_;
  SessionManager sessions_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace lacon::service
