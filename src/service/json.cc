#include "service/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace lacon::service {

namespace {

const std::string kEmptyString;
const Json::Array kEmptyArray;
const Json::Object kEmptyObject;

// Nesting cap for the parser: a request line is a flat object with at most
// one level of structure, so 64 is generous while keeping recursion bounded.
constexpr int kMaxDepth = 64;

}  // namespace

Json Json::raw(std::string text) {
  Json j;
  j.v_ = RawTag{std::move(text)};
  return j;
}

Json::Type Json::type() const noexcept {
  return static_cast<Type>(v_.index());
}

bool Json::as_bool(bool fallback) const noexcept {
  if (const bool* b = std::get_if<bool>(&v_)) return *b;
  return fallback;
}

double Json::as_number(double fallback) const noexcept {
  if (const double* d = std::get_if<double>(&v_)) return *d;
  return fallback;
}

const std::string& Json::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&v_)) return *s;
  return kEmptyString;
}

const Json::Array& Json::as_array() const {
  if (const Array* a = std::get_if<Array>(&v_)) return *a;
  return kEmptyArray;
}

const Json::Object& Json::as_object() const {
  if (const Object* o = std::get_if<Object>(&v_)) return *o;
  return kEmptyObject;
}

const Json* Json::find(std::string_view key) const {
  if (const Object* o = std::get_if<Object>(&v_)) {
    for (const auto& [k, v] : *o) {
      if (k == key) return &v;
    }
  }
  return nullptr;
}

Json::Object& Json::object() {
  if (!std::holds_alternative<Object>(v_)) v_ = Object{};
  return std::get<Object>(v_);
}

Json::Array& Json::array() {
  if (!std::holds_alternative<Array>(v_)) v_ = Array{};
  return std::get<Array>(v_);
}

void Json::set(std::string key, Json value) {
  object().emplace_back(std::move(key), std::move(value));
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string Json::dump() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return std::get<bool>(v_) ? "true" : "false";
    case Type::kNumber: {
      const double d = std::get<double>(v_);
      // Integral values (ids, counts) print without a decimal point.
      if (std::isfinite(d) && d == std::floor(d) &&
          std::abs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(d));
        return buf;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      return buf;
    }
    case Type::kString:
      return "\"" + json_escape(std::get<std::string>(v_)) + "\"";
    case Type::kArray: {
      std::string out = "[";
      const Array& a = std::get<Array>(v_);
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i != 0) out += ",";
        out += a[i].dump();
      }
      return out + "]";
    }
    case Type::kObject: {
      std::string out = "{";
      const Object& o = std::get<Object>(v_);
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i != 0) out += ",";
        out += "\"" + json_escape(o[i].first) + "\":" + o[i].second.dump();
      }
      return out + "}";
    }
    case Type::kRaw:
      return std::get<RawTag>(v_).text;
  }
  return "null";
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> run() {
    skip_ws();
    std::optional<Json> v = value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      set_error("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void set_error(const char* what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(what) + " at byte " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Json> value(int depth) {
    if (depth > kMaxDepth) {
      set_error("nesting too deep");
      return std::nullopt;
    }
    if (pos_ >= text_.size()) {
      set_error("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') {
      std::optional<std::string> s = string();
      if (!s) return std::nullopt;
      return Json(std::move(*s));
    }
    if (literal("null")) return Json(nullptr);
    if (literal("true")) return Json(true);
    if (literal("false")) return Json(false);
    return number();
  }

  std::optional<Json> number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      set_error("expected a value");
      return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      set_error("malformed number");
      return std::nullopt;
    }
    return Json(d);
  }

  std::optional<std::string> string() {
    if (!eat('"')) {
      set_error("expected a string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        set_error("raw control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            set_error("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              set_error("malformed \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by the protocol; lone surrogates encode as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          set_error("invalid escape");
          return std::nullopt;
      }
    }
    set_error("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> array(int depth) {
    eat('[');
    Json out{Json::Array{}};
    skip_ws();
    if (eat(']')) return out;
    while (true) {
      skip_ws();
      std::optional<Json> v = value(depth + 1);
      if (!v) return std::nullopt;
      out.array().push_back(std::move(*v));
      skip_ws();
      if (eat(']')) return out;
      if (!eat(',')) {
        set_error("expected ',' or ']'");
        return std::nullopt;
      }
    }
  }

  std::optional<Json> object(int depth) {
    eat('{');
    Json out{Json::Object{}};
    skip_ws();
    if (eat('}')) return out;
    while (true) {
      skip_ws();
      std::optional<std::string> key = string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) {
        set_error("expected ':'");
        return std::nullopt;
      }
      skip_ws();
      std::optional<Json> v = value(depth + 1);
      if (!v) return std::nullopt;
      out.set(std::move(*key), std::move(*v));
      skip_ws();
      if (eat('}')) return out;
      if (!eat(',')) {
        set_error("expected ',' or '}'");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  if (error != nullptr) error->clear();
  return Parser(text, error).run();
}

}  // namespace lacon::service
