// The laconrd wire protocol: newline-delimited JSON analysis requests.
//
// One request per line, one response line per request. A request names a
// model instance and a query; the daemon interns all requests for the same
// (model, n, t) into ONE shared state space — a Session — so later requests
// warm-start on everything earlier ones explored (hash-consing makes the
// re-interning hits, the layer cache and valence memo make the analysis
// incremental). Request schema:
//
//   {"id": <any>,              echoed verbatim in the response
//    "model": "mobile" | "sharedmem" | "msgpass" | "sync"  (default mobile)
//    "n": <int>, "t": <int>,   t only meaningful for "sync"
//    "query": "layers" | "valence" | "diameter" | "similarity",
//    "depth": <int>,           exploration depth (default 2)
//    "horizon": <int>,         valence lookahead (default depth + 1)
//    "budget_ms": <int>,       per-request wall-clock budget (0 = none)
//    "max_states": <int>,      per-request arena budget (0 = none)
//    "metrics": <bool>}        embed the full lacon.metrics.v1 snapshot
//
// Response: {"id", "status": "ok" | "truncated" | "error", result fields
// per query, "truncation": <guard reason> when truncated, "error": <msg>
// on error, "metrics": {elapsed_ms, states, views, new_states, new_views}}.
// Results are id-free (counts, level sizes, diameters) — raw StateIds are
// scheduling-dependent and never cross the wire (DESIGN.md §9).
//
// Budgets ride on lacon::guard: each request gets its own live Guard, so a
// tiny budget truncates that request to a valid partial result (with its
// TruncationReason) while concurrent requests on other connections keep
// their own budgets — exactly the Partial<T> contract the engine layers
// already honor. Handling is thread-safe: the arenas, layer cache and
// valence memo are concurrent by construction, so requests against the same
// session run in parallel.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "analysis/reports.hpp"
#include "service/json.hpp"

namespace lacon {
class LemmaStore;
}  // namespace lacon

namespace lacon::store {
class Wal;
}  // namespace lacon::store

namespace lacon::service {

struct Request {
  Json id;
  ModelKind kind = ModelKind::kMobile;
  int n = 3;
  int t = 1;
  std::string query = "layers";
  int depth = 2;
  int horizon = 3;
  std::int64_t budget_ms = 0;
  std::uint64_t max_states = 0;
  bool include_metrics = false;
};

// Parses and validates one request object. Returns false and fills `error`
// on schema violations (unknown model/query, out-of-range n/t/depth).
bool parse_request(const Json& doc, Request* out, std::string* error);

// One interned state space shared by every request for (kind, n, t).
class Session {
 public:
  Session(ModelKind kind, int n, int t);
  ~Session();

  LayeredModel& model() noexcept { return *model_; }
  ModelKind kind() const noexcept { return kind_; }
  int n() const noexcept { return n_; }
  int t() const noexcept { return t_; }

  // The engine for a given lookahead (created on first use; the memo is
  // shared by every request at that horizon). Every engine shares the
  // session's lemma store, so an exact univalence fact proven at one
  // horizon short-circuits the subtree walk at every other.
  ValenceEngine& engine(int horizon);

  // The session-wide store of proven univalence facts, keyed by canonical
  // state signature (engine/lemma_store.hpp). Persisted in snapshots and
  // WAL records alongside the memo.
  LemmaStore& lemmas() noexcept { return *lemmas_; }

  // First-request hook: when LACON_STORE asks for a load (or LACON_WAL is
  // on) and a snapshot for this instance exists, replays it into the (still
  // empty) model — with `eng`'s memo imported when the stored horizon/mode
  // match — then, with LACON_WAL on, opens the session's WAL and replays
  // its records over the snapshot (kill -9 recovery). An unreadable WAL is
  // quarantined to `<path>.bad` and restarted fresh rather than ever
  // crashing the daemon. Runs at most once per session; failures fall back
  // to a cold start (one stderr line).
  void ensure_store_loaded(ValenceEngine* eng);

  // Durability commit point (LACON_WAL=on; no-op otherwise): returns only
  // once everything this request interned/cached is fsync'd in the WAL.
  // handle_request calls this after analysis and BEFORE the response is
  // serialized, so a response on the wire implies its work survives
  // kill -9. Commits are GROUP-COMMITTED: concurrent callers stage their
  // engines and exactly one leader performs a single coalesced
  // append+fsync for the whole round (Wal::append batch overload); every
  // caller waits for a round that started no earlier than its own arrival,
  // which — appends cover everything past the durability watermark — is
  // what makes its finished work durable. Compacts the log into a fresh
  // snapshot once it outgrows LACON_WAL_COMPACT times the snapshot. The
  // vector overload stages several engines in one round (a pipelined batch
  // of requests shares one fsync).
  void commit_wal(ValenceEngine* eng);
  void commit_wal(const std::vector<ValenceEngine*>& engines);

  // Drains the pending operator notice (empty if none): set when store
  // recovery quarantined an unreadable WAL to `<path>.bad`, and attached by
  // handle_request to the next response as a "notice" field so operators
  // learn the quarantined file's path from the wire, not just stderr.
  std::string take_notice();

  // Saves the session per LACON_STORE; uses the most recently used engine's
  // memo. Returns false (with a stderr line) if the save failed. With the
  // WAL on, a successful save also resets the log to the new snapshot.
  bool store_save();

 private:
  ModelKind kind_;
  int n_;
  int t_;
  std::unique_ptr<DecisionRule> rule_;
  std::unique_ptr<LayeredModel> model_;
  std::unique_ptr<LemmaStore> lemmas_;
  std::mutex engines_mu_;
  std::map<int, std::unique_ptr<ValenceEngine>> engines_;
  ValenceEngine* last_engine_ = nullptr;
  // The leader's append/compact body; caller holds store_mu_ via the
  // group-commit protocol in commit_wal.
  void leader_commit_locked(const std::vector<ValenceEngine*>& engines);

  std::mutex store_mu_;
  bool store_attempted_ = false;
  std::unique_ptr<store::Wal> wal_;       // null unless LACON_WAL=on
  std::uint64_t snapshot_bytes_ = 0;      // compaction baseline
  std::string pending_notice_;            // guarded by store_mu_

  // --- group commit (see commit_wal) ---
  // commit_started_ counts rounds a leader has claimed, commit_done_ rounds
  // completed; a caller needs commit_done_ >= (commit_started_ at arrival)
  // + 1, because only a round that STARTS after its analysis finished is
  // guaranteed to capture its delta.
  std::mutex commit_mu_;
  std::condition_variable commit_cv_;
  std::uint64_t commit_started_ = 0;
  std::uint64_t commit_done_ = 0;
  bool commit_leader_ = false;
  std::vector<ValenceEngine*> commit_engines_;  // staged for the next round
};

// Owns every session; thread-safe. Sessions are created on demand and live
// for the manager's lifetime, so references stay valid across requests.
class SessionManager {
 public:
  Session& session(ModelKind kind, int n, int t);

  // Saves every session per LACON_STORE (daemon shutdown path).
  void save_all();

  std::size_t session_count();

 private:
  std::mutex mu_;
  std::map<std::tuple<int, int, int>, std::unique_ptr<Session>> sessions_;
};

// Executes one parsed request and assembles the response document.
Json handle_request(SessionManager& sessions, const Request& req);

// Full line-level entry point: parse, validate, execute, serialize. Always
// returns a one-line JSON response (parse failures become status "error"
// with a null id), never throws. Equivalent to a pipelined batch of one.
std::string handle_line(SessionManager& sessions, std::string_view line);

// Pipelined execution of several NDJSON request lines read off one
// connection: requests execute IN ORDER, every session a batch touched is
// group-committed ONCE (all the batch's work shares one WAL fsync), and
// only then are the responses returned — in request order, one response
// string per line. The durability contract is unchanged: the commit
// precedes every response byte, so any response on the wire implies the
// whole batch's work survives kill -9. See PROTOCOL.md "Pipelining".
std::vector<std::string> handle_batch(SessionManager& sessions,
                                      const std::vector<std::string>& lines);

}  // namespace lacon::service
