#include "service/protocol.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <new>
#include <utility>
#include <vector>

#include "engine/explore.hpp"
#include "engine/lemma_store.hpp"
#include "engine/valence.hpp"
#include "relation/similarity.hpp"
#include "runtime/guard.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace.hpp"
#include "store/env.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace lacon::service {

namespace {

// Request bounds. The daemon shares one process with every connected
// client, so per-request shape limits are part of the protocol: n is capped
// where exhaustive exploration (and the snapshot lossless-round-trip
// contract) lives, depth/horizon where the run tree stays enumerable.
constexpr int kMinN = 2, kMaxN = 8;
constexpr int kMaxDepth = 12;
constexpr int kMaxHorizon = 32;

bool parse_kind(const std::string& text, ModelKind* out) {
  if (text == "mobile") {
    *out = ModelKind::kMobile;
  } else if (text == "sharedmem") {
    *out = ModelKind::kSharedMem;
  } else if (text == "msgpass") {
    *out = ModelKind::kMsgPass;
  } else if (text == "sync") {
    *out = ModelKind::kSync;
  } else {
    return false;
  }
  return true;
}

bool get_int(const Json& doc, const char* key, int fallback, int lo, int hi,
             int* out, std::string* error) {
  const Json* v = doc.find(key);
  if (v == nullptr) {
    *out = fallback;
    return true;
  }
  if (!v->is_number()) {
    *error = std::string(key) + " must be a number";
    return false;
  }
  const double d = v->as_number();
  if (d != std::floor(d) || d < lo || d > hi) {
    *error = std::string(key) + " must be an integer in [" +
             std::to_string(lo) + ", " + std::to_string(hi) + "]";
    return false;
  }
  *out = static_cast<int>(d);
  return true;
}

// Quotiented sessions (LACON_SYMMETRY=on, core/sym.hpp) intern one orbit
// representative per process-permutation class, so raw counts over the
// arena undercount the full space. Responses stay mode-independent by
// weighting every representative by |orbit| — a sum that reproduces the
// unquotiented count exactly — and by unfolding path-query frontiers to
// whole orbits. orbit_weight/unfold_orbit are identity when the quotient
// is off, so the same code serves both modes.
std::uint64_t orbit_sum(LayeredModel& model, const std::vector<StateId>& X,
                        std::size_t count) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count && i < X.size(); ++i) {
    total += model.orbit_weight(X[i]);
  }
  return total;
}

std::vector<StateId> unfold_frontier(LayeredModel& model,
                                     const std::vector<StateId>& frontier) {
  if (!model.sym_quotient_active()) return frontier;
  std::vector<StateId> full;
  for (StateId x : frontier) {
    for (StateId y : model.unfold_orbit(x)) full.push_back(y);
  }
  std::sort(full.begin(), full.end());
  full.erase(std::unique(full.begin(), full.end()), full.end());
  return full;
}

}  // namespace

bool parse_request(const Json& doc, Request* out, std::string* error) {
  if (!doc.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  if (const Json* id = doc.find("id")) out->id = *id;

  if (const Json* model = doc.find("model")) {
    if (!model->is_string() || !parse_kind(model->as_string(), &out->kind)) {
      *error = "model must be one of mobile|sharedmem|msgpass|sync";
      return false;
    }
  }
  if (!get_int(doc, "n", 3, kMinN, kMaxN, &out->n, error)) return false;
  if (!get_int(doc, "t", 1, 1, out->n - 1, &out->t, error)) return false;
  if (!get_int(doc, "depth", 2, 0, kMaxDepth, &out->depth, error)) {
    return false;
  }
  if (!get_int(doc, "horizon", out->depth + 1, 0, kMaxHorizon, &out->horizon,
               error)) {
    return false;
  }

  const Json* query = doc.find("query");
  if (query != nullptr) {
    if (!query->is_string()) {
      *error = "query must be a string";
      return false;
    }
    out->query = query->as_string();
  }
  if (out->query != "layers" && out->query != "valence" &&
      out->query != "diameter" && out->query != "similarity") {
    *error = "query must be one of layers|valence|diameter|similarity";
    return false;
  }

  int budget_ms = 0;
  if (!get_int(doc, "budget_ms", 0, 0, 86'400'000, &budget_ms, error)) {
    return false;
  }
  out->budget_ms = budget_ms;
  int max_states = 0;
  if (!get_int(doc, "max_states", 0, 0, 1'000'000'000, &max_states, error)) {
    return false;
  }
  out->max_states = static_cast<std::uint64_t>(max_states);
  if (const Json* m = doc.find("metrics")) out->include_metrics = m->as_bool();
  return true;
}

Session::Session(ModelKind kind, int n, int t)
    : kind_(kind),
      n_(n),
      t_(t),
      // FloodSet-style rule that genuinely decides, so valence queries are
      // about something: t+1 rounds solve consensus in Sync/S^t; round 2 is
      // the convention the bench harnesses use for the other three models.
      rule_(min_after_round(kind == ModelKind::kSync ? t + 1 : 2)),
      model_(make_model(kind, n, t, *rule_)),
      lemmas_(std::make_unique<LemmaStore>()) {}

Session::~Session() = default;

ValenceEngine& Session::engine(int horizon) {
  std::lock_guard<std::mutex> lock(engines_mu_);
  auto it = engines_.find(horizon);
  if (it == engines_.end()) {
    it = engines_
             .emplace(horizon,
                      std::make_unique<ValenceEngine>(
                          *model_, horizon, default_exactness(kind_),
                          lemmas_.get()))
             .first;
  }
  last_engine_ = it->second.get();
  return *it->second;
}

void Session::ensure_store_loaded(ValenceEngine* eng) {
  std::lock_guard<std::mutex> lock(store_mu_);
  if (store_attempted_) return;
  store_attempted_ = true;
  const bool wal_on = store::wal_enabled();
  if (!store::loads(store::mode()) && !wal_on) return;

  // Snapshot first: with the WAL on it is the base the log replays over
  // (and the compaction target), so it loads even when LACON_STORE itself
  // is off.
  const std::string path = store::snapshot_path(*model_);
  const store::Result r = store::load(*model_, path, eng, lemmas_.get());
  if (r.ok()) {
    store::SnapshotMeta meta;
    if (store::probe(path, &meta).ok()) snapshot_bytes_ = meta.file_bytes;
  } else if (r.status != store::Status::kIoError) {
    // kIoError is the common no-snapshot-yet case; anything else means a
    // snapshot existed and was rejected — say why, then cold-start.
    std::fprintf(stderr, "laconrd: snapshot load failed (%s): %s\n",
                 store::to_string(r.status), r.detail.c_str());
  }

  if (!wal_on) return;
  wal_ = std::make_unique<store::Wal>();
  const std::string wpath = store::wal_path(*model_);
  store::Result w = wal_->open(*model_, wpath);
  if (w.ok()) {
    store::WalReplayStats rs;
    w = wal_->replay(*model_, eng, lemmas_.get(), &rs);
    if (w.ok() && rs.truncated_bytes > 0) {
      std::fprintf(stderr,
                   "laconrd: wal %s: truncated %llu torn tail bytes, "
                   "replayed %llu records\n",
                   wpath.c_str(),
                   static_cast<unsigned long long>(rs.truncated_bytes),
                   static_cast<unsigned long long>(rs.records_applied));
    }
  }
  if (!w.ok()) {
    // A log we cannot trust end to end gets quarantined, the current model
    // content is made durable by an immediate snapshot, and a fresh log
    // starts from there. The daemon never refuses to serve over a bad log.
    std::fprintf(stderr,
                 "laconrd: wal recovery failed (%s): %s; quarantining to "
                 "%s.bad\n",
                 store::to_string(w.status), w.detail.c_str(), wpath.c_str());
    wal_->close();
    std::rename(wpath.c_str(), (wpath + ".bad").c_str());
    // Surface the quarantine on the wire too (stderr alone is invisible to
    // remote operators): the next response for this session carries a
    // "notice" naming the quarantined file.
    pending_notice_ = "wal quarantined to " + wpath + ".bad (" +
                      store::to_string(w.status) + ": " + w.detail + ")";
    const store::Result s = store::save(*model_, path, eng, lemmas_.get());
    if (s.ok()) {
      store::SnapshotMeta meta;
      if (store::probe(path, &meta).ok()) snapshot_bytes_ = meta.file_bytes;
    } else {
      std::fprintf(stderr, "laconrd: snapshot save failed (%s): %s\n",
                   store::to_string(s.status), s.detail.c_str());
    }
    store::Result reopened = wal_->open(*model_, wpath);
    if (reopened.ok()) reopened = wal_->replay(*model_, eng, lemmas_.get());
    if (!reopened.ok()) {
      std::fprintf(stderr, "laconrd: wal disabled for this session (%s): %s\n",
                   store::to_string(reopened.status),
                   reopened.detail.c_str());
      wal_.reset();
    }
  }
}

void Session::commit_wal(ValenceEngine* eng) {
  commit_wal(std::vector<ValenceEngine*>{eng});
}

void Session::commit_wal(const std::vector<ValenceEngine*>& engines) {
  // wal_ is written exactly once, inside this thread's earlier
  // ensure_store_loaded call (under store_mu_), so the unlocked read here
  // is ordered after that write.
  if (wal_ == nullptr) return;

  std::unique_lock<std::mutex> lock(commit_mu_);
  commit_engines_.insert(commit_engines_.end(), engines.begin(),
                         engines.end());
  // Wal::append persists everything interned before it runs, so this
  // caller's work — finished before this call — is covered by any round
  // that STARTS from here on. A round already in flight may have captured
  // its horizon before we arrived and cannot be counted on.
  const std::uint64_t need = commit_started_ + 1;
  while (commit_done_ < need) {
    if (!commit_leader_) {
      // Claim leadership of the next round and commit the whole stage with
      // one append+fsync. Leader exclusivity (commit_leader_) keeps the
      // Wal externally serialized; store_mu_ additionally fences loads,
      // saves and compaction.
      commit_leader_ = true;
      const std::uint64_t round = ++commit_started_;
      std::vector<ValenceEngine*> staged;
      staged.swap(commit_engines_);
      lock.unlock();
      {
        std::lock_guard<std::mutex> store(store_mu_);
        leader_commit_locked(staged);
      }
      lock.lock();
      commit_leader_ = false;
      commit_done_ = round;
      commit_cv_.notify_all();
    } else {
      runtime::Stats::global().counter("service.commit_waits").increment();
      commit_cv_.wait(lock);
    }
  }
}

void Session::leader_commit_locked(
    const std::vector<ValenceEngine*>& engines) {
  const store::Result r = wal_->append(*model_, engines, lemmas_.get());
  if (!r.ok()) {
    std::fprintf(stderr, "laconrd: wal append failed (%s): %s\n",
                 store::to_string(r.status), r.detail.c_str());
    return;
  }
  if (!wal_->should_compact(snapshot_bytes_, store::wal_compact_ratio())) {
    return;
  }
  // The log dwarfs the snapshot: fold everything into a fresh snapshot and
  // restart the log from it. The watermark counts come from the file just
  // written (probe), not the live model — interning may have raced the
  // save.
  ValenceEngine* eng = engines.empty() ? nullptr : engines.front();
  const std::string path = store::snapshot_path(*model_);
  const store::Result s = store::save(*model_, path, eng, lemmas_.get());
  if (!s.ok()) {
    std::fprintf(stderr, "laconrd: compaction snapshot failed (%s): %s\n",
                 store::to_string(s.status), s.detail.c_str());
    return;
  }
  store::SnapshotMeta meta;
  if (!store::probe(path, &meta).ok()) return;
  snapshot_bytes_ = meta.file_bytes;
  const store::Result t = wal_->reset_to(*model_, meta.num_views,
                                         meta.num_states, eng, lemmas_.get());
  if (!t.ok()) {
    std::fprintf(stderr, "laconrd: wal reset failed (%s): %s\n",
                 store::to_string(t.status), t.detail.c_str());
  }
}

std::string Session::take_notice() {
  std::lock_guard<std::mutex> lock(store_mu_);
  std::string out;
  out.swap(pending_notice_);
  return out;
}

bool Session::store_save() {
  if (!store::saves(store::mode())) return true;
  ValenceEngine* eng;
  {
    std::lock_guard<std::mutex> lock(engines_mu_);
    eng = last_engine_;
  }
  const std::string path = store::snapshot_path(*model_);
  const store::Result r = store::save(*model_, path, eng, lemmas_.get());
  if (!r.ok()) {
    std::fprintf(stderr, "laconrd: snapshot save failed (%s): %s\n",
                 store::to_string(r.status), r.detail.c_str());
    return false;
  }
  // The fresh snapshot supersedes every logged record; restart the log so
  // the next run replays nothing it already has. Skipping this is safe
  // (replay skips covered records) but leaves the log to grow stale bytes.
  std::lock_guard<std::mutex> lock(store_mu_);
  if (wal_ != nullptr) {
    store::SnapshotMeta meta;
    if (store::probe(path, &meta).ok()) {
      snapshot_bytes_ = meta.file_bytes;
      wal_->reset_to(*model_, meta.num_views, meta.num_states, eng,
                     lemmas_.get());
    }
  }
  return true;
}

Session& SessionManager::session(ModelKind kind, int n, int t) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_tuple(static_cast<int>(kind), n, t);
  auto it = sessions_.find(key);
  if (it == sessions_.end()) {
    it = sessions_.emplace(key, std::make_unique<Session>(kind, n, t)).first;
  }
  return *it->second;
}

void SessionManager::save_all() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, session] : sessions_) session->store_save();
}

std::size_t SessionManager::session_count() {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

namespace {

// One executed-but-not-yet-committed request: the response document plus
// the session/engine whose delta still needs a WAL commit. handle_request
// commits immediately; handle_batch defers and commits each touched
// session once for the whole batch.
struct Executed {
  Json response;
  Session* session = nullptr;
  ValenceEngine* engine = nullptr;
};

Executed execute_request(SessionManager& sessions, const Request& req) {
  const auto start = std::chrono::steady_clock::now();
  auto& stats = runtime::Stats::global();
  stats.counter("service.requests").increment();

  Session& session = sessions.session(req.kind, req.n, req.t);
  ValenceEngine& engine = session.engine(req.horizon);
  session.ensure_store_loaded(&engine);
  LayeredModel& model = session.model();
  const std::size_t states_before = model.num_states();
  const std::size_t views_before = model.num_views();

  guard::Guard g;  // live even without limits: fault probes still apply
  if (req.budget_ms > 0) {
    g.with_deadline(std::chrono::milliseconds(req.budget_ms));
  }
  if (req.max_states > 0) g.with_state_budget(req.max_states);

  Json resp;
  resp.set("id", req.id);
  guard::TruncationReason reason = guard::TruncationReason::kNone;
  Json result;

  try {
    auto levels = reachable_by_depth(model, req.depth, g);
    reason = levels.truncation;
    const std::vector<StateId> frontier =
        levels.value.empty() ? std::vector<StateId>{} : levels.value.back();

    if (req.query == "layers") {
      Json sizes{Json::Array{}};
      std::uint64_t total = 0;
      for (const auto& level : levels.value) {
        const std::uint64_t weighted = orbit_sum(model, level, level.size());
        sizes.array().push_back(Json(weighted));
        total += weighted;
      }
      result.set("depth_completed", Json(levels.completed));
      result.set("level_sizes", std::move(sizes));
      result.set("total_states", Json(total));
    } else if (req.query == "valence") {
      auto infos = engine.classify_all(frontier, g);
      if (reason == guard::TruncationReason::kNone) reason = infos.truncation;
      // Valence is permutation-invariant (a symmetric rule decides the same
      // values along π·run as along run), so one representative's verdict
      // counts for its whole orbit.
      std::uint64_t bivalent = 0, uni0 = 0, uni1 = 0, exact = 0;
      for (std::size_t i = 0; i < infos.value.size(); ++i) {
        const ValenceInfo& v = infos.value[i];
        const std::uint64_t w = model.orbit_weight(frontier[i]);
        if (v.bivalent()) bivalent += w;
        if (v.univalent() && v.value() == 0) uni0 += w;
        if (v.univalent() && v.value() == 1) uni1 += w;
        if (v.exact) exact += w;
      }
      result.set("frontier", Json(orbit_sum(model, frontier, frontier.size())));
      result.set("classified", Json(orbit_sum(model, frontier, infos.completed)));
      result.set("bivalent", Json(bivalent));
      result.set("univalent0", Json(uni0));
      result.set("univalent1", Json(uni1));
      result.set("exact", Json(exact));
    } else if (req.query == "diameter") {
      const std::vector<StateId> full = unfold_frontier(model, frontier);
      auto d = s_diameter(model, full, g);
      if (reason == guard::TruncationReason::kNone) reason = d.truncation;
      result.set("frontier", Json(full.size()));
      result.set("sources_completed", Json(d.completed));
      result.set("diameter",
                 d.value.has_value() ? Json(*d.value) : Json(nullptr));
      result.set("connected", Json(d.value.has_value()));
    } else {  // similarity
      const std::vector<StateId> full = unfold_frontier(model, frontier);
      auto graph = similarity_graph(model, full, g);
      if (reason == guard::TruncationReason::kNone) reason = graph.truncation;
      result.set("frontier", Json(full.size()));
      result.set("edges", Json(graph.value.edge_count()));
      if (graph.complete()) {
        result.set("connected", Json(graph.value.connected()));
      } else {
        // Connectivity of a partial graph bounds nothing.
        result.set("connected", Json(nullptr));
      }
    }
  } catch (const std::bad_alloc&) {
    // Injected allocation faults (runtime/fault.hpp) or real exhaustion:
    // report this request truncated by its state budget, keep serving.
    g.note_memory_exhausted();
    reason = guard::TruncationReason::kStateBudget;
  }

  resp.set("status", reason == guard::TruncationReason::kNone
                         ? Json("ok")
                         : Json("truncated"));
  if (reason != guard::TruncationReason::kNone) {
    resp.set("truncation", Json(guard::to_string(reason)));
    stats.counter("service.requests_truncated").increment();
  }
  resp.set("result", std::move(result));

  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  Json metrics;
  metrics.set("elapsed_ms", Json(elapsed_ms));
  metrics.set("states", Json(model.num_states()));
  metrics.set("views", Json(model.num_views()));
  metrics.set("new_states", Json(model.num_states() - states_before));
  metrics.set("new_views", Json(model.num_views() - views_before));
  // Raw arena counts are mode-dependent (a quotiented arena holds one
  // representative per orbit); stamping the mode here keeps them
  // interpretable. The "result" object above is mode-independent.
  metrics.set("symmetry", Json(model.sym_quotient_active()));
  resp.set("metrics", std::move(metrics));
  if (req.include_metrics) {
    // The same lacon.metrics.v1 document the bench harnesses emit.
    resp.set("snapshot", Json::raw(trace::metrics_snapshot_json()));
  }
  // Operator notice from store recovery (e.g. "wal quarantined to <path>"):
  // attached to whichever response drains it first, so the quarantined
  // file's path reaches the wire rather than only stderr.
  const std::string notice = session.take_notice();
  if (!notice.empty()) resp.set("notice", Json(notice));
  return Executed{std::move(resp), &session, &engine};
}

// Parses one NDJSON line into `req`. On failure fills `error_resp` with the
// one-line error response (null id unless the id parsed) and returns false.
bool parse_line(std::string_view line, Request* req, Json* error_resp) {
  std::string error;
  std::optional<Json> doc = Json::parse(line, &error);
  if (doc && parse_request(*doc, req, &error)) return true;
  runtime::Stats::global().counter("service.requests_rejected").increment();
  error_resp->set("id", doc ? req->id : Json(nullptr));
  error_resp->set("status", Json("error"));
  error_resp->set("error", Json(error.empty() ? "malformed request" : error));
  return false;
}

}  // namespace

Json handle_request(SessionManager& sessions, const Request& req) {
  Executed ex = execute_request(sessions, req);
  // Durability commit BEFORE the response exists: once the client reads a
  // response line, every state/view/cache entry it depended on is fsync'd
  // in the WAL (LACON_WAL=on; no-op otherwise), so kill -9 after a
  // response never loses that response's work.
  ex.session->commit_wal(ex.engine);
  return std::move(ex.response);
}

std::string handle_line(SessionManager& sessions, std::string_view line) {
  Request req;
  Json error_resp;
  if (!parse_line(line, &req, &error_resp)) return error_resp.dump();
  return handle_request(sessions, req).dump();
}

std::vector<std::string> handle_batch(SessionManager& sessions,
                                      const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  // Sessions touched by this batch, in first-touch order, with every engine
  // the batch ran against them. A connection rarely touches more than a
  // couple of sessions, so linear scan beats a map here.
  std::vector<std::pair<Session*, std::vector<ValenceEngine*>>> touched;
  for (const std::string& line : lines) {
    Request req;
    Json error_resp;
    if (!parse_line(line, &req, &error_resp)) {
      out.push_back(error_resp.dump());
      continue;
    }
    Executed ex = execute_request(sessions, req);
    auto it = touched.begin();
    while (it != touched.end() && it->first != ex.session) ++it;
    if (it == touched.end()) {
      touched.push_back({ex.session, {ex.engine}});
    } else {
      it->second.push_back(ex.engine);
    }
    out.push_back(ex.response.dump());
  }
  // One group commit per touched session: the whole batch's work shares one
  // fsync (Wal's batch append), and the commit still precedes every
  // response byte on the wire — the caller only sends after we return.
  for (auto& [session, engines] : touched) {
    session->commit_wal(engines);
  }
  return out;
}

}  // namespace lacon::service
