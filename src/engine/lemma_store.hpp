// Cross-level lemma store (DESIGN.md §15): a cache of *proven* valence
// facts keyed by canonical state signature instead of StateId.
//
// ValenceEngine's memo is keyed by StateId, so it lives and dies with one
// model instance and one horizon. Exact valence results, however, are pure
// functions of a state's *content* (plus the model semantics and decision
// rule): once "this state is 0-univalent, proven with lookahead 3" has been
// established, the fact holds for every engine over the same model/rule —
// at a deeper horizon, at a later level, or in a warm-started session whose
// StateIds came out in a different order. The store keys such facts by the
// 128-bit canonical signature (LayeredModel::canonical_signature), which
// hashes rewrite-keys rather than raw ids, so facts survive id
// nondeterminism and snapshot/WAL restarts (store/snapshot.hpp persists
// them as the optional kLemmas section).
//
// Soundness contract:
//  * Only exact facts are stored. An exact valence set is final — computing
//    with any budget >= the fact's lookahead returns the same set — so a
//    hit is byte-identical to what the engine would have computed, never a
//    "better" truncated answer. (lookup() enforces budget >= lookahead.)
//  * One store serves one (model semantics, decision rule, n, t) identity.
//    Callers scope a store to a session the way laconrd does; mixing rules
//    or models in one store would alias signatures across incompatible run
//    trees. The canonical signature hashes state content only.
//  * Thread-safe: sharded like the valence memo; lookup/publish may race
//    freely with each other and with export/import.
//
// In the spirit of learned-clause stores in modern solvers (lemma databases
// keyed by canonical clause content, reused across restarts), but for the
// layered analysis the "clauses" are univalence certificates.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/valence.hpp"

namespace lacon {

namespace runtime {
class Counter;
}  // namespace runtime

class LemmaStore {
 public:
  using Signature = std::pair<std::uint64_t, std::uint64_t>;

  // One persisted fact: the state with canonical signature (sig_hi, sig_lo)
  // has exactly the valence set {v0, v1}, proven exact with `lookahead`
  // layers of budget. Mirrors the 24-byte on-disk record
  // (store/codec.hpp encode_lemma_entry).
  struct Fact {
    std::uint64_t sig_hi = 0;
    std::uint64_t sig_lo = 0;
    std::int32_t lookahead = 0;
    bool v0 = false;
    bool v1 = false;
  };

  LemmaStore();

  // The stored fact for `sig`, provided the requesting budget covers the
  // lookahead it was proven with (a shallower request must fall through to
  // its own computation — returning a deeper fact would make truncated
  // results depend on store warmth). Hits return exact ValenceInfo.
  std::optional<ValenceInfo> lookup(Signature sig, int budget);

  // Records an exact fact. Non-exact infos are ignored (truncated valence
  // sets are not lemmas). Re-publishing the same signature keeps the
  // smallest lookahead, widening future hit eligibility; conflicting
  // valence sets (a 2^-128 signature collision, or a misuse across rules)
  // keep the first-stored fact.
  void publish(Signature sig, int lookahead, const ValenceInfo& info);

  // Every fact, sorted by (sig_hi, sig_lo) — the deterministic order the
  // store sections and WAL deltas are written in. Takes the shard locks.
  std::vector<Fact> export_facts() const;

  // Replays facts exported from a store over the same model identity.
  // Merges under the publish() rule, so importing into a warm store is safe.
  void import_facts(const std::vector<Fact>& facts);

  std::size_t size() const noexcept;

 private:
  struct Entry {
    std::int32_t lookahead = 0;
    bool v0 = false;
    bool v1 = false;
  };
  struct SigHash {
    std::size_t operator()(const Signature& s) const noexcept {
      // sig_hi and sig_lo are independent 64-bit hashes already; fold.
      return static_cast<std::size_t>(s.first ^ (s.second * 0x9e3779b97f4a7c15ULL));
    }
  };
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<Signature, Entry, SigHash> map;
  };

  Shard& shard_for(const Signature& sig) const noexcept {
    return shards_[static_cast<std::size_t>(sig.first) % kShards];
  }

  mutable std::array<Shard, kShards> shards_;
  runtime::Counter* hits_;
  runtime::Counter* misses_;
  runtime::Counter* published_;
};

}  // namespace lacon
