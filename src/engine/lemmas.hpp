// Mechanized checkers for the paper's numbered results.
//
// Each checker exhaustively tests a lemma's statement on the concrete
// instance given by (model, protocol, exploration depth) and returns a
// CheckResult whose `detail` names the first counterexample when the check
// fails. The test suite runs these across all four models and a catalog of
// protocols; the benchmark harnesses report their aggregate statistics.
//
// The `mode` parameter selects the valence-exactness criterion (see
// engine/valence.hpp): kQuiescence for the synchronous-flavoured models,
// kConvergence for the asynchronous layerings with sleeper branches.
#pragma once

#include <functional>
#include <string>

#include "core/model.hpp"
#include "engine/valence.hpp"

namespace lacon {

struct CheckResult {
  bool ok = true;
  std::string detail;

  // Number of states / pairs examined, for reporting.
  std::size_t checked = 0;
};

// Lemma 3.1: in a system where at most t < n processes fail, every bivalent
// state has at least n-t non-failed processes that have not decided.
// Verified over all states reachable within `depth` layers, with valence
// lookahead `horizon`.
CheckResult check_lemma_3_1(LayeredModel& model, int t, int depth, int horizon,
                            Exactness mode = Exactness::kQuiescence);

// Lemma 3.2: in a system displaying no finite failure, no process has
// decided at a bivalent state.
//
// NOTE: Lemmas 3.1 and 3.2 hypothesize a system *satisfying agreement*; run
// them with an agreement-safe rule (e.g. min_when_all_known) in the models
// where no rule satisfies all three consensus requirements.
CheckResult check_lemma_3_2(LayeredModel& model, int depth, int horizon,
                            Exactness mode = Exactness::kQuiescence);

// The contrapositive of Lemma 3.2, non-vacuous for rules that violate
// agreement: whenever a bivalent state has a decided non-failed process, an
// agreement violation (two non-failed processes decided differently) is
// reachable from it — the system cannot have satisfied agreement.
CheckResult check_lemma_3_2_contrapositive(
    LayeredModel& model, int depth, int horizon,
    Exactness mode = Exactness::kQuiescence);

// Lemma 3.3: x ~s y implies x ~v y, over every pair within each explored
// depth level (the levels are the sets X the paper applies the lemma to).
// Requires a protocol satisfying decision so valences are exact.
CheckResult check_lemma_3_3(LayeredModel& model, int depth, int horizon,
                            Exactness mode = Exactness::kQuiescence);

// Lemma 3.6: Con_0 is similarity connected and valence connected, and (with
// validity) contains a bivalent state.
CheckResult check_lemma_3_6(LayeredModel& model, int horizon,
                            Exactness mode = Exactness::kQuiescence);

// Layer connectivity, the (iii) clauses of Lemmas 5.1 and 5.3 and the
// corresponding claim for the permutation layering: for every state x
// reachable within `depth` layers and accepted by `filter`, S(x) is valence
// connected; when `expect_similarity` is set, S(x) must be similarity
// connected as well (true for the synchronic layering S1, false for S^rw
// and S^per whose layers are bridged by valence only).
//
// The filter matters for the t-resilient synchronous model: the paper only
// claims valence connectivity of S^t(x) while fewer than t-1 processes have
// failed (proof of Lemma 6.1), so pass a filter on |failed_at(x)| there.
CheckResult check_layer_connectivity(
    LayeredModel& model, int depth, int horizon, bool expect_similarity,
    Exactness mode = Exactness::kQuiescence,
    const std::function<bool(StateId)>& filter = {});

// Lemma 6.1 (constructive): starting from a bivalent initial state with f=0
// failed processes, an S^t execution of t-1 layers exists in which every
// state is bivalent and the state at layer m has at most m failed processes.
// Returns failure if the chain cannot be built.
CheckResult check_lemma_6_1(LayeredModel& model, int t, int horizon,
                            Exactness mode = Exactness::kQuiescence);

// Lemma 6.2 (statement form): for every reachable bivalent state x, some
// state of S(x) has a non-failed process that has not decided.
CheckResult check_lemma_6_2(LayeredModel& model, int depth, int horizon,
                            Exactness mode = Exactness::kQuiescence);

// Lemma 6.4: for a fast protocol (decides within t+1 rounds), every
// (k+1)-layer execution with at most k failures at layer k and a
// failure-free (k+1)-st layer ends univalent.
CheckResult check_lemma_6_4(LayeredModel& model, int t, int horizon,
                            Exactness mode = Exactness::kQuiescence);

}  // namespace lacon
