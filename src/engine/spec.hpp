// Bounded-depth checking of the three consensus requirements (Section 3)
// over the runs of a layered model, and the resulting "trilemma" report: for
// any candidate protocol, at least one requirement fails in the asynchronous
// models — either a safety violation found by exhaustive search, or a
// non-termination witness constructed by the bivalence engine.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "engine/valence.hpp"

namespace lacon {

struct AgreementViolation {
  StateId state = 0;
  ProcessId p = 0;
  ProcessId q = 0;  // decided differently from p, both non-failed at state
};

struct ValidityViolation {
  StateId state = 0;
  ProcessId p = 0;
  Value decided = 0;  // a value that is nobody's input in this run
};

struct SpecReport {
  std::optional<AgreementViolation> agreement;
  std::optional<ValidityViolation> validity;
  // True when every depth-`depth` run prefix reaches a state where all
  // non-failed processes have decided.
  bool all_quiesce = true;
  // A deepest state with an undecided non-failed process, when one exists.
  std::optional<StateId> undecided_witness;
  std::size_t states_visited = 0;
};

// Explores every S-run prefix of length `depth` from every initial state
// (with state deduplication) and reports on agreement, validity and
// quiescence.
SpecReport check_consensus_spec(LayeredModel& model, int depth);

// The outcome of the executable Theorem 4.2: which consensus requirement the
// candidate protocol violates in this model, with a witness description.
struct TrilemmaVerdict {
  enum class Violated { kAgreement, kValidity, kDecision, kNone };
  Violated violated = Violated::kNone;
  std::string witness;
};

// Runs the spec checker; if the protocol is safe (no agreement/validity
// violation up to `depth`), attempts to build a bivalent run of length
// `depth` witnessing non-termination. `horizon` is the valence lookahead.
TrilemmaVerdict consensus_trilemma(LayeredModel& model, int depth,
                                   int horizon);

}  // namespace lacon
