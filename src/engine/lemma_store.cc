#include "engine/lemma_store.hpp"

#include <algorithm>
#include <tuple>

#include "runtime/stats.hpp"

namespace lacon {

LemmaStore::LemmaStore()
    : hits_(&runtime::Stats::global().counter("lemmas.hits")),
      misses_(&runtime::Stats::global().counter("lemmas.misses")),
      published_(&runtime::Stats::global().counter("lemmas.published")) {}

std::optional<ValenceInfo> LemmaStore::lookup(Signature sig, int budget) {
  Shard& shard = shard_for(sig);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(sig);
  if (it == shard.map.end() || it->second.lookahead > budget) {
    misses_->increment();
    return std::nullopt;
  }
  hits_->increment();
  ValenceInfo info;
  info.v0 = it->second.v0;
  info.v1 = it->second.v1;
  info.exact = true;
  return info;
}

void LemmaStore::publish(Signature sig, int lookahead,
                         const ValenceInfo& info) {
  if (!info.exact || lookahead < 0) return;
  Shard& shard = shard_for(sig);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(
      sig, Entry{lookahead, info.v0, info.v1});
  if (inserted) {
    published_->increment();
    return;
  }
  Entry& e = it->second;
  if (e.v0 != info.v0 || e.v1 != info.v1) return;  // collision: keep first
  if (lookahead < e.lookahead) e.lookahead = lookahead;
}

std::vector<LemmaStore::Fact> LemmaStore::export_facts() const {
  std::vector<Fact> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [sig, e] : shard.map) {
      out.push_back(Fact{sig.first, sig.second, e.lookahead, e.v0, e.v1});
    }
  }
  std::sort(out.begin(), out.end(), [](const Fact& a, const Fact& b) {
    return std::tie(a.sig_hi, a.sig_lo) < std::tie(b.sig_hi, b.sig_lo);
  });
  return out;
}

void LemmaStore::import_facts(const std::vector<Fact>& facts) {
  for (const Fact& f : facts) {
    ValenceInfo info;
    info.v0 = f.v0;
    info.v1 = f.v1;
    info.exact = true;
    publish({f.sig_hi, f.sig_lo}, f.lookahead, info);
  }
}

std::size_t LemmaStore::size() const noexcept {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace lacon
