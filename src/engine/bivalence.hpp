// Bivalent-run construction: the executable content of Lemma 4.1 and
// Theorem 4.2.
//
// Given a layered model and a protocol (decision rule) that satisfies
// decision and validity, the engine (i) finds a bivalent initial state (the
// Lemma 3.6 argument), and (ii) repeatedly selects a bivalent successor
// inside the current layer (Lemma 4.1 guarantees one exists whenever the
// layer is valence connected), producing a run prefix of any requested depth
// all of whose states are bivalent — the round-by-round construction the
// paper contrasts with FLP's critical-state argument.
#pragma once

#include <string>
#include <vector>

#include "engine/valence.hpp"
#include "runtime/guard.hpp"

namespace lacon {

struct BivalentRunResult {
  // The constructed execution x0, x1, ..., each state bivalent, each in the
  // layer of its predecessor; x0 is an initial state.
  std::vector<StateId> run;
  // True when the run reached the requested depth.
  bool complete = false;
  // Diagnostic when the construction stops early (e.g. no bivalent initial
  // state, or a layer with no bivalent member).
  std::string stuck_reason;
  // kNone unless a guard stopped the construction; the run built so far is
  // still a valid bivalent prefix.
  guard::TruncationReason truncation = guard::TruncationReason::kNone;
};

// Extends a bivalent run to `depth` layers. The valence engine's horizon
// bounds the lookahead used to classify states.
BivalentRunResult extend_bivalent_run(ValenceEngine& engine, int depth);

// Same construction but starting from a given bivalent state.
BivalentRunResult extend_bivalent_run_from(ValenceEngine& engine,
                                           StateId start, int depth);

// Guarded variants: the guard is checked (including the state/memory
// budget) before each depth step; a trip returns the bivalent prefix built
// so far with `truncation` set. An injected allocation failure inside the
// step degrades to a kStateBudget truncation the same way.
BivalentRunResult extend_bivalent_run(ValenceEngine& engine, int depth,
                                      const guard::Guard& g);
BivalentRunResult extend_bivalent_run_from(ValenceEngine& engine,
                                           StateId start, int depth,
                                           const guard::Guard& g);

}  // namespace lacon
