#include "engine/spec.hpp"

#include <algorithm>
#include <unordered_set>

#include "engine/bivalence.hpp"
#include "util/bitset.hpp"

namespace lacon {
namespace {

// Checks a single state for an agreement violation among non-failed
// processes.
std::optional<AgreementViolation> agreement_violation_at(LayeredModel& model,
                                                         StateId x) {
  const StateRef s = model.state(x);
  const ProcessSet failed = model.failed_at(x);
  std::optional<ProcessId> first;
  for (ProcessId i = 0; i < model.n(); ++i) {
    if (failed.contains(i)) continue;
    const Value d = s.decisions[static_cast<std::size_t>(i)];
    if (d == kUndecided) continue;
    if (!first) {
      first = i;
    } else if (s.decisions[static_cast<std::size_t>(*first)] != d) {
      return AgreementViolation{x, *first, i};
    }
  }
  return std::nullopt;
}

// Checks a single state for a validity violation: a decided value that was
// nobody's input. Inputs are recoverable from the views' root nodes.
std::optional<ValidityViolation> validity_violation_at(LayeredModel& model,
                                                       StateId x) {
  const StateRef s = model.state(x);
  std::unordered_set<Value> inputs;
  for (ProcessId i = 0; i < model.n(); ++i) {
    inputs.insert(model.views().node(s.locals[static_cast<std::size_t>(i)]).input);
  }
  for (ProcessId i = 0; i < model.n(); ++i) {
    const Value d = s.decisions[static_cast<std::size_t>(i)];
    if (d != kUndecided && !inputs.contains(d)) {
      return ValidityViolation{x, i, d};
    }
  }
  return std::nullopt;
}

}  // namespace

SpecReport check_consensus_spec(LayeredModel& model, int depth) {
  SpecReport report;
  std::vector<StateId> frontier = model.initial_states();
  DenseBitset seen(model.num_states());
  for (StateId x : frontier) seen.insert(x);

  for (int d = 0; d <= depth; ++d) {
    for (StateId x : frontier) {
      ++report.states_visited;
      if (!report.agreement) report.agreement = agreement_violation_at(model, x);
      if (!report.validity) report.validity = validity_violation_at(model, x);
      if (d == depth && !quiescent(model, x)) {
        report.all_quiesce = false;
        if (!report.undecided_witness) report.undecided_witness = x;
      }
    }
    if (d == depth) break;
    std::vector<StateId> next;
    for (StateId x : frontier) {
      if (quiescent(model, x)) continue;  // the run tree below cannot change
      for (StateId y : model.layer(x)) {
        if (seen.insert(y)) next.push_back(y);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return report;
}

TrilemmaVerdict consensus_trilemma(LayeredModel& model, int depth,
                                   int horizon) {
  TrilemmaVerdict verdict;
  const SpecReport report = check_consensus_spec(model, depth);
  if (report.agreement) {
    verdict.violated = TrilemmaVerdict::Violated::kAgreement;
    verdict.witness = "processes " + std::to_string(report.agreement->p) +
                      " and " + std::to_string(report.agreement->q) +
                      " decided differently (state " +
                      std::to_string(report.agreement->state) + ")";
    return verdict;
  }
  if (report.validity) {
    verdict.violated = TrilemmaVerdict::Violated::kValidity;
    verdict.witness = "process " + std::to_string(report.validity->p) +
                      " decided " + std::to_string(report.validity->decided) +
                      ", which is nobody's input (state " +
                      std::to_string(report.validity->state) + ")";
    return verdict;
  }

  // The protocol is safe up to `depth`; exhibit non-termination via an
  // all-bivalent run (Theorem 4.2 construction).
  ValenceEngine engine(model, horizon);
  const BivalentRunResult run = extend_bivalent_run(engine, depth);
  if (run.complete) {
    verdict.violated = TrilemmaVerdict::Violated::kDecision;
    verdict.witness = "bivalent run of length " +
                      std::to_string(run.run.size() - 1) +
                      " constructed; undecided non-failed processes persist";
    return verdict;
  }
  if (!report.all_quiesce) {
    verdict.violated = TrilemmaVerdict::Violated::kDecision;
    verdict.witness = "run prefix of depth " + std::to_string(depth) +
                      " with an undecided non-failed process";
    return verdict;
  }
  verdict.violated = TrilemmaVerdict::Violated::kNone;
  verdict.witness = "all requirements hold to depth " + std::to_string(depth);
  return verdict;
}

}  // namespace lacon
