#include "engine/valence.hpp"

#include <cassert>
#include <memory>

#include "runtime/parallel.hpp"
#include "runtime/stats.hpp"

namespace lacon {

bool quiescent(LayeredModel& model, StateId x) {
  const GlobalState& s = model.state(x);
  const ProcessSet failed = model.failed_at(x);
  for (ProcessId i = 0; i < model.n(); ++i) {
    if (failed.contains(i)) continue;
    if (s.decisions[static_cast<std::size_t>(i)] == kUndecided) return false;
  }
  return true;
}

ValenceInfo decided_valences(LayeredModel& model, StateId x) {
  ValenceInfo info;
  const GlobalState& s = model.state(x);
  const ProcessSet failed = model.failed_at(x);
  for (ProcessId i = 0; i < model.n(); ++i) {
    if (failed.contains(i)) continue;
    const Value d = s.decisions[static_cast<std::size_t>(i)];
    if (d == 0) info.v0 = true;
    if (d == 1) info.v1 = true;
  }
  return info;
}

ValenceEngine::ValenceEngine(LayeredModel& model, int horizon, Exactness mode)
    : model_(model), horizon_(horizon), mode_(mode) {
  assert(horizon >= 0);
}

ValenceInfo ValenceEngine::valence(StateId x) {
  if (mode_ == Exactness::kQuiescence) return compute(memo_, x, horizon_);
  const ValenceInfo shallow = compute(memo_, x, horizon_);
  if (shallow.bivalent()) return shallow;  // maximal already
  ValenceInfo deep = compute(memo_deep_, x, horizon_ + 1);
  deep.exact = deep.exact || deep.bivalent() || deep.same_set(shallow);
  return deep;
}

ValenceInfo ValenceEngine::compute(Memo& memo, StateId x, int budget) {
  MemoShard& shard = memo.shards[static_cast<std::size_t>(x) % kMemoShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(x);
    if (it != shard.map.end()) {
      // A bivalent result is maximal; otherwise only reuse results computed
      // with at least the currently requested lookahead.
      if (it->second.info.bivalent() || it->second.horizon >= budget) {
        return it->second.info;
      }
    }
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);

  ValenceInfo info = decided_valences(model_, x);
  if (info.bivalent() || quiescent(model_, x)) {
    info.exact = true;
    memoize(memo, x, budget, info);
    return info;
  }
  if (budget == 0) {
    info.exact = false;
    memoize(memo, x, 0, info);
    return info;
  }

  info.exact = true;
  for (StateId y : model_.layer(x)) {
    const ValenceInfo sub = compute(memo, y, budget - 1);
    info.v0 = info.v0 || sub.v0;
    info.v1 = info.v1 || sub.v1;
    info.exact = info.exact && sub.exact;
    if (info.bivalent()) {
      info.exact = true;  // the valence set cannot grow further
      break;
    }
  }
  memoize(memo, x, budget, info);
  return info;
}

void ValenceEngine::memoize(Memo& memo, StateId x, int budget,
                            const ValenceInfo& info) {
  MemoShard& shard = memo.shards[static_cast<std::size_t>(x) % kMemoShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& e = shard.map[x];  // default horizon -1: always overwritten
  if (e.info.bivalent() && !info.bivalent()) return;
  if (budget >= e.horizon || info.bivalent()) e = Entry{budget, info};
}

std::vector<ValenceInfo> ValenceEngine::classify_all(
    const std::vector<StateId>& X) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("valence.classify_time"));
  stats.counter("valence.states_classified").add(X.size());
  std::vector<ValenceInfo> out(X.size());
  runtime::parallel_for(X.size(),
                        [&](std::size_t i) { out[i] = valence(X[i]); });
  return out;
}

bool ValenceEngine::shared_valence(StateId x, StateId y) {
  const ValenceInfo a = valence(x);
  const ValenceInfo b = valence(y);
  return (a.v0 && b.v0) || (a.v1 && b.v1);
}

Graph ValenceEngine::valence_graph(const std::vector<StateId>& X) {
  // Precompute valences once (in parallel); the graph is then a pure
  // bitmask product. The shared_ptr keeps the infos alive inside the
  // by-value relation callable.
  auto infos = std::make_shared<std::vector<ValenceInfo>>(classify_all(X));
  return Graph::from_relation(X.size(), [infos](std::size_t a,
                                                std::size_t b) {
    return ((*infos)[a].v0 && (*infos)[b].v0) ||
           ((*infos)[a].v1 && (*infos)[b].v1);
  });
}

bool ValenceEngine::valence_connected(const std::vector<StateId>& X) {
  return valence_graph(X).connected();
}

std::optional<StateId> ValenceEngine::find_bivalent(
    const std::vector<StateId>& X) {
  for (StateId x : X) {
    if (valence(x).bivalent()) return x;
  }
  return std::nullopt;
}

}  // namespace lacon
