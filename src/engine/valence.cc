#include "engine/valence.hpp"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "engine/lemma_store.hpp"
#include "runtime/parallel.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace.hpp"

namespace lacon {

bool quiescent(LayeredModel& model, StateId x) {
  const StateRef s = model.state(x);
  const ProcessSet failed = model.failed_at(x);
  for (ProcessId i = 0; i < model.n(); ++i) {
    if (failed.contains(i)) continue;
    if (s.decisions[static_cast<std::size_t>(i)] == kUndecided) return false;
  }
  return true;
}

ValenceInfo decided_valences(LayeredModel& model, StateId x) {
  ValenceInfo info;
  const StateRef s = model.state(x);
  const ProcessSet failed = model.failed_at(x);
  for (ProcessId i = 0; i < model.n(); ++i) {
    if (failed.contains(i)) continue;
    const Value d = s.decisions[static_cast<std::size_t>(i)];
    if (d == 0) info.v0 = true;
    if (d == 1) info.v1 = true;
  }
  return info;
}

ValenceEngine::ValenceEngine(LayeredModel& model, int horizon, Exactness mode,
                             LemmaStore* lemmas)
    : model_(model), horizon_(horizon), mode_(mode), lemmas_(lemmas) {
  assert(horizon >= 0);
}

ValenceInfo ValenceEngine::valence(StateId x) {
  if (mode_ == Exactness::kQuiescence) return compute(memo_, x, horizon_);
  const ValenceInfo shallow = compute(memo_, x, horizon_);
  if (shallow.bivalent()) return shallow;  // maximal already
  ValenceInfo deep = compute(memo_deep_, x, horizon_ + 1);
  deep.exact = deep.exact || deep.bivalent() || deep.same_set(shallow);
  return deep;
}

ValenceInfo ValenceEngine::compute(Memo& memo, StateId x, int budget) {
  MemoShard& shard = memo.shards[static_cast<std::size_t>(x) % kMemoShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(x);
    if (it != shard.map.end()) {
      // A bivalent result is maximal; otherwise only reuse results computed
      // with at least the currently requested lookahead.
      if (it->second.info.bivalent() || it->second.horizon >= budget) {
        return it->second.info;
      }
    }
  }
  evaluations_.fetch_add(1, std::memory_order_relaxed);

  ValenceInfo info = decided_valences(model_, x);
  if (info.bivalent() || quiescent(model_, x)) {
    info.exact = true;
    memoize(memo, x, budget, info);
    return info;
  }
  if (budget == 0) {
    info.exact = false;
    memoize(memo, x, 0, info);
    return info;
  }

  // Lemma-store consultation sits exactly here — after the cheap immediate
  // checks, before the subtree walk it can save. A hit is always an exact
  // fact proven with lookahead <= budget, i.e. byte-identical to what the
  // walk below would return (engine/lemma_store.hpp soundness contract).
  LemmaStore::Signature sig{};
  if (lemmas_ != nullptr) {
    sig = model_.canonical_signature(x);
    if (std::optional<ValenceInfo> hit = lemmas_->lookup(sig, budget)) {
      memoize(memo, x, budget, *hit);
      return *hit;
    }
  }

  info.exact = true;
  for (StateId y : model_.layer(x)) {
    const ValenceInfo sub = compute(memo, y, budget - 1);
    info.v0 = info.v0 || sub.v0;
    info.v1 = info.v1 || sub.v1;
    info.exact = info.exact && sub.exact;
    if (info.bivalent()) {
      info.exact = true;  // the valence set cannot grow further
      break;
    }
  }
  memoize(memo, x, budget, info);
  if (lemmas_ != nullptr && info.exact) lemmas_->publish(sig, budget, info);
  return info;
}

void ValenceEngine::memoize(Memo& memo, StateId x, int budget,
                            const ValenceInfo& info) {
  MemoShard& shard = memo.shards[static_cast<std::size_t>(x) % kMemoShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& e = shard.map[x];  // default horizon -1: always overwritten
  if (e.info.bivalent() && !info.bivalent()) return;
  if (budget >= e.horizon || info.bivalent()) e = Entry{budget, info};
}

guard::Partial<std::vector<ValenceInfo>> ValenceEngine::classify_all(
    const std::vector<StateId>& X, const guard::Guard& g) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("valence.classify_time"));
  LACON_TRACE_PHASE("valence", "classify", X.size());
  guard::Partial<std::vector<ValenceInfo>> out;
  out.value.resize(X.size());
  out.completed = runtime::parallel_for_guarded(
      g, X.size(), [&](std::size_t i) { out.value[i] = valence(X[i]); });
  out.value.resize(out.completed);
  out.truncation = g.reason();
  stats.counter("valence.states_classified").add(out.completed);
  return out;
}

std::vector<ValenceInfo> ValenceEngine::classify_all(
    const std::vector<StateId>& X) {
  guard::ScopedGuard scoped(guard::process_guard_spec());
  guard::Partial<std::vector<ValenceInfo>> partial =
      classify_all(X, scoped.get());
  // Pad a truncated classification back to X.size(): positional consumers
  // (valence_graph) index infos[i] across all of X, and a default entry —
  // inexact, no witnessed valences — is the honest "don't know".
  partial.value.resize(X.size());
  return std::move(partial.value);
}

std::vector<ValenceEngine::MemoEntry> ValenceEngine::export_memo() {
  std::vector<MemoEntry> out;
  const auto drain = [&out](Memo& memo, bool deep) {
    for (MemoShard& shard : memo.shards) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [x, e] : shard.map) {
        out.push_back(MemoEntry{x, e.horizon, e.info.v0, e.info.v1,
                                e.info.exact, deep});
      }
    }
  };
  drain(memo_, false);
  if (mode_ == Exactness::kConvergence) drain(memo_deep_, true);
  std::sort(out.begin(), out.end(), [](const MemoEntry& a, const MemoEntry& b) {
    return std::tie(a.deep, a.x) < std::tie(b.deep, b.x);
  });
  return out;
}

void ValenceEngine::import_memo(const std::vector<MemoEntry>& entries) {
  for (const MemoEntry& e : entries) {
    if (e.deep && mode_ != Exactness::kConvergence) continue;
    ValenceInfo info;
    info.v0 = e.v0;
    info.v1 = e.v1;
    info.exact = e.exact;
    memoize(e.deep ? memo_deep_ : memo_, e.x, e.lookahead, info);
  }
}

bool ValenceEngine::shared_valence(StateId x, StateId y) {
  const ValenceInfo a = valence(x);
  const ValenceInfo b = valence(y);
  return (a.v0 && b.v0) || (a.v1 && b.v1);
}

Graph ValenceEngine::valence_graph(const std::vector<StateId>& X) {
  // Over a fixed classification, ~v is the union of two cliques: the states
  // that can reach a 0-decision and those that can reach a 1-decision. Both
  // member lists are ascending in X order, so emitting each clique's pairs
  // directly, then sorting and deduplicating (bivalent states sit in both
  // cliques), reproduces the lexicographic edge sequence of the old
  // O(|X|^2) relation sweep without evaluating a single pair predicate.
  const std::vector<ValenceInfo> infos = classify_all(X);
  std::vector<Graph::Vertex> v0, v1;
  for (std::size_t i = 0; i < X.size(); ++i) {
    if (infos[i].v0) v0.push_back(static_cast<Graph::Vertex>(i));
    if (infos[i].v1) v1.push_back(static_cast<Graph::Vertex>(i));
  }
  std::vector<Graph::Edge> edges;
  edges.reserve((v0.size() * (v0.size() + 1) +
                 v1.size() * (v1.size() + 1)) / 2);
  for (const auto& clique : {v0, v1}) {
    for (std::size_t a = 0; a < clique.size(); ++a) {
      for (std::size_t b = a + 1; b < clique.size(); ++b) {
        edges.emplace_back(clique[a], clique[b]);
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  runtime::Stats::global().counter("valence.clique_edges").add(edges.size());
  return Graph::from_sorted_edges(X.size(), std::move(edges));
}

bool ValenceEngine::valence_connected(const std::vector<StateId>& X) {
  return valence_graph(X).connected();
}

std::optional<StateId> ValenceEngine::find_bivalent(
    const std::vector<StateId>& X) {
  for (StateId x : X) {
    if (valence(x).bivalent()) return x;
  }
  return std::nullopt;
}

}  // namespace lacon
