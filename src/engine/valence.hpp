// Valence computation (Section 3 of the paper).
//
// A state x is v-valent when some execution of the (sub)model extending x has
// a nonfaulty process deciding v. Because all our models satisfy Fault
// Independence constructively — from any state there is an extension in which
// only already-failed processes fail — a process that is non-failed at a
// state and has decided v witnesses v-valence.
//
// The paper quantifies over infinite runs; the engine explores the layered
// successor DAG up to a horizon and tracks *exactness* of the computed
// valence set under one of two criteria:
//
//  * kQuiescence — every explored branch reached a state where all non-failed
//    processes have decided (or bivalence, which is maximal). This is sound
//    and complete for models in which every process acts in every layer
//    (M^mf, the t-resilient synchronous model) running protocols that decide
//    within the horizon.
//
//  * kConvergence — the valence sets computed with lookahead H and H+1
//    coincide. The asynchronous layerings contain "sleeper" branches (the
//    (j,A) shared-memory action, the drop-last permutation action) along
//    which one process never acts, so strict quiescence is unreachable; the
//    sleeper is faulty in those runs and owes no decision. Horizon
//    convergence is the standard finite-horizon discharge of the infinite-run
//    quantifier: the valence set is monotone in the horizon, and a fixed
//    point across consecutive horizons is reported as exact.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/model.hpp"
#include "relation/graph.hpp"
#include "runtime/guard.hpp"

namespace lacon {

class LemmaStore;

struct ValenceInfo {
  bool v0 = false;
  bool v1 = false;
  bool exact = false;

  bool bivalent() const noexcept { return v0 && v1; }
  bool univalent() const noexcept { return v0 != v1; }
  // The unique valence of a univalent state.
  Value value() const noexcept { return v1 ? 1 : 0; }

  bool same_set(const ValenceInfo& o) const noexcept {
    return v0 == o.v0 && v1 == o.v1;
  }
};

enum class Exactness { kQuiescence, kConvergence };

class ValenceEngine {
 public:
  // `horizon`: number of layers explored below a state when computing its
  // valence. For a protocol whose decisions complete within r rounds, any
  // horizon >= r yields exact valences under kQuiescence in the synchronous
  // models.
  //
  // `lemmas` (optional, not owned, must outlive the engine) attaches a
  // cross-level lemma store (engine/lemma_store.hpp): exact results are
  // published under the state's canonical signature, and signature hits
  // with sufficient lookahead short-circuit the subtree evaluation. One
  // store may be shared by engines of different horizons over the same
  // model/rule — exact facts are horizon-independent.
  ValenceEngine(LayeredModel& model, int horizon,
                Exactness mode = Exactness::kQuiescence,
                LemmaStore* lemmas = nullptr);

  ValenceInfo valence(StateId x);

  // Classifies every state of X, in X order, on the parallel runtime. The
  // memo is shared across the concurrent classifications (their explored
  // subtrees overlap heavily), which is safe: each memo entry is a pure
  // function of its state and lookahead. Exact results are identical for
  // every worker count; inexact (budget-truncated) ones can witness more
  // valences through a warmer memo, exactly as a different serial call
  // order already could.
  std::vector<ValenceInfo> classify_all(const std::vector<StateId>& X);

  // Guarded classification: the guard is probed before each state; a trip
  // truncates to a valid prefix of X (value.size() == completed <= X.size(),
  // entry i still the full valence of X[i]). The unguarded overload pads a
  // truncated result back to X.size() with default (inexact, no-valence)
  // entries so positional consumers like valence_graph stay index-aligned.
  guard::Partial<std::vector<ValenceInfo>> classify_all(
      const std::vector<StateId>& X, const guard::Guard& g);

  // x ~v y : both are w-valent for some w (Definition 3.1).
  bool shared_valence(StateId x, StateId y);

  // The graph (X, ~v).
  Graph valence_graph(const std::vector<StateId>& X);
  bool valence_connected(const std::vector<StateId>& X);

  // Constructive Lemma 3.4: if X is valence connected and contains both a
  // 0-valent and a 1-valent state, a bivalent member exists; returns the
  // first one found (in X order), or nullopt.
  std::optional<StateId> find_bivalent(const std::vector<StateId>& X);

  LayeredModel& model() noexcept { return model_; }
  int horizon() const noexcept { return horizon_; }
  Exactness mode() const noexcept { return mode_; }
  LemmaStore* lemmas() const noexcept { return lemmas_; }
  std::size_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }

  // One exported memo entry (lacon::store, store/snapshot.hpp). `lookahead`
  // is the budget the entry was computed with; `deep` marks entries of the
  // horizon+1 memo that kConvergence mode maintains.
  struct MemoEntry {
    StateId x = 0;
    std::int32_t lookahead = 0;
    bool v0 = false;
    bool v1 = false;
    bool exact = false;
    bool deep = false;
  };

  // Every memo entry, sorted by (deep, x). Takes the shard locks; call only
  // while no classification is in flight.
  std::vector<MemoEntry> export_memo();

  // Replays entries exported from an engine with the same model content,
  // horizon and mode. Entries merge under the usual strongest-wins rule
  // (memoize()), so importing into a warm engine is safe.
  void import_memo(const std::vector<MemoEntry>& entries);

 private:
  struct Entry {
    int horizon = -1;
    ValenceInfo info;
  };
  // The memo is sharded with striped mutexes so classify_all's concurrent
  // explorations share results without contending on one lock.
  static constexpr std::size_t kMemoShards = 16;
  struct MemoShard {
    std::mutex mu;
    std::unordered_map<StateId, Entry> map;
  };
  struct Memo {
    std::array<MemoShard, kMemoShards> shards;
  };

  ValenceInfo compute(Memo& memo, StateId x, int budget);
  // Stores (budget, info) for x unless the memo already holds a stronger
  // entry (deeper lookahead, or bivalent which is maximal).
  void memoize(Memo& memo, StateId x, int budget, const ValenceInfo& info);

  LayeredModel& model_;
  int horizon_;
  Exactness mode_;
  LemmaStore* lemmas_;
  Memo memo_;       // lookahead = horizon_
  Memo memo_deep_;  // lookahead = horizon_ + 1 (kConvergence only)
  std::atomic<std::size_t> evaluations_{0};
};

// True when every process that is non-failed at x has decided (the run tree
// below x can no longer change the set of witnessed valences).
bool quiescent(LayeredModel& model, StateId x);

// The decided values among processes non-failed at x.
ValenceInfo decided_valences(LayeredModel& model, StateId x);

}  // namespace lacon
