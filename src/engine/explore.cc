#include "engine/explore.hpp"

#include <unordered_set>

namespace lacon {

std::vector<std::vector<StateId>> reachable_by_depth(LayeredModel& model,
                                                     int depth) {
  std::vector<std::vector<StateId>> levels;
  levels.push_back(model.initial_states());
  std::unordered_set<StateId> seen(levels[0].begin(), levels[0].end());
  for (int d = 0; d < depth; ++d) {
    std::vector<StateId> next;
    for (StateId x : levels.back()) {
      for (StateId y : model.layer(x)) {
        if (seen.insert(y).second) next.push_back(y);
      }
    }
    if (next.empty()) break;
    levels.push_back(std::move(next));
  }
  return levels;
}

std::vector<StateId> reachable_states(LayeredModel& model, int depth) {
  std::vector<StateId> out;
  for (const auto& level : reachable_by_depth(model, depth)) {
    out.insert(out.end(), level.begin(), level.end());
  }
  return out;
}

}  // namespace lacon
