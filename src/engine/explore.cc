#include "engine/explore.hpp"

#include "runtime/fault.hpp"
#include "runtime/parallel.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace.hpp"
#include "util/bitset.hpp"

namespace lacon {

guard::Partial<std::vector<std::vector<StateId>>> reachable_by_depth(
    LayeredModel& model, int depth, const guard::Guard& g) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("explore.expand_time"));

  guard::Partial<std::vector<std::vector<StateId>>> out;
  try {
    out.value.push_back(model.initial_states());
  } catch (const fault::InjectedAllocError&) {
    if (g.never_trips()) throw;  // inert guard: behave like the raw call
    g.note_memory_exhausted();
    out.truncation = g.reason();
    return out;  // not even Con_0 materialized: empty value, completed 0
  }
  // StateIds are dense arena indices, so the visited set is a bit-vector:
  // one bit per interned state instead of a hash node per discovered one.
  DenseBitset seen(model.num_states());
  for (StateId x : out.value[0]) seen.insert(x);
  for (int d = 0; d < depth; ++d) {
    // Depth boundary: the one place the state/memory budget is evaluated.
    // The arena population here is scheduling-independent, so a budget trip
    // truncates at the same depth for every worker count.
    if (g.check(model.num_states(), model.memory_footprint()) !=
        guard::TruncationReason::kNone) {
      break;
    }
    const std::vector<StateId>& frontier = out.value.back();
    // Phase 1 (parallel): expand every frontier state, filling the model's
    // layer cache. The per-state work — computing S(x) and interning its
    // states and views — dominates the whole exploration, so this is also
    // where the guard is probed per state; a trip means the cache may be
    // missing layers, in which case the merge below must not run (it would
    // recompute them serially, unguarded).
    {
      // The per-worker chunks of this section trace as "explore.expand"
      // spans (the PhaseScope publishes the site; arg = layer depth).
      LACON_TRACE_PHASE("explore", "expand", d);
      if (g.never_trips()) {
        if (runtime::worker_count() > 1) {
          runtime::parallel_for(
              frontier.size(),
              [&](std::size_t i) { model.layer(frontier[i]); });
        }
      } else {
        const std::size_t filled = runtime::parallel_for_guarded(
            g, frontier.size(),
            [&](std::size_t i) { model.layer(frontier[i]); });
        if (filled < frontier.size() || g.tripped()) break;
      }
    }
    // Phase 2 (serial, canonical): merge layers in frontier order, so the
    // discovery order — and with it every level's content — is a function
    // of the cached layers alone, not of thread scheduling. A trip mid-merge
    // discards the partial level: truncation is level-granular.
    std::vector<StateId> next;
    bool aborted = false;
    {
      LACON_TRACE_SPAN_ARG("explore", "merge", frontier.size());
      try {
        for (StateId x : frontier) {
          if (g.tripped()) {
            aborted = true;
            break;
          }
          for (StateId y : model.layer(x)) {
            if (seen.insert(y)) next.push_back(y);
          }
        }
      } catch (const fault::InjectedAllocError&) {
        if (g.never_trips()) throw;  // inert guard: behave like the raw call
        g.note_memory_exhausted();
        aborted = true;
      }
    }
    if (aborted) break;
    stats.counter("explore.layers_expanded").add(frontier.size());
    if (next.empty()) break;  // quiescent: complete, not truncated
    out.value.push_back(std::move(next));
  }
  stats.counter("explore.states_discovered").add(seen.size());
  out.truncation = g.reason();
  out.completed = out.value.empty() ? 0 : out.value.size() - 1;
  return out;
}

std::vector<std::vector<StateId>> reachable_by_depth(LayeredModel& model,
                                                     int depth) {
  guard::ScopedGuard scoped(guard::process_guard_spec());
  return reachable_by_depth(model, depth, scoped.get()).value;
}

std::vector<StateId> reachable_states(LayeredModel& model, int depth) {
  std::vector<StateId> out;
  for (const auto& level : reachable_by_depth(model, depth)) {
    out.insert(out.end(), level.begin(), level.end());
  }
  return out;
}

}  // namespace lacon
