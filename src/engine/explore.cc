#include "engine/explore.hpp"

#include <unordered_set>

#include "runtime/parallel.hpp"
#include "runtime/stats.hpp"

namespace lacon {

std::vector<std::vector<StateId>> reachable_by_depth(LayeredModel& model,
                                                     int depth) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("explore.expand_time"));

  std::vector<std::vector<StateId>> levels;
  levels.push_back(model.initial_states());
  std::unordered_set<StateId> seen(levels[0].begin(), levels[0].end());
  for (int d = 0; d < depth; ++d) {
    const std::vector<StateId>& frontier = levels.back();
    // Phase 1 (parallel): expand every frontier state, filling the model's
    // layer cache. The per-state work — computing S(x) and interning its
    // states and views — dominates the whole exploration; with one worker
    // this phase is skipped and the serial merge below does the expansion.
    if (runtime::worker_count() > 1) {
      runtime::parallel_for(frontier.size(),
                            [&](std::size_t i) { model.layer(frontier[i]); });
    }
    // Phase 2 (serial, canonical): merge layers in frontier order, so the
    // discovery order — and with it every level's content — is a function
    // of the cached layers alone, not of thread scheduling.
    std::vector<StateId> next;
    for (StateId x : frontier) {
      for (StateId y : model.layer(x)) {
        if (seen.insert(y).second) next.push_back(y);
      }
    }
    stats.counter("explore.layers_expanded").add(frontier.size());
    if (next.empty()) break;
    levels.push_back(std::move(next));
  }
  stats.counter("explore.states_discovered").add(seen.size());
  return levels;
}

std::vector<StateId> reachable_states(LayeredModel& model, int depth) {
  std::vector<StateId> out;
  for (const auto& level : reachable_by_depth(model, depth)) {
    out.insert(out.end(), level.begin(), level.end());
  }
  return out;
}

}  // namespace lacon
