// Breadth-first enumeration of the layered run tree.
#pragma once

#include <vector>

#include "core/model.hpp"

namespace lacon {

// All states reachable from the initial states in at most `depth` layers,
// deduplicated, grouped by the depth at which they were first discovered.
// Quiescence does not prune here: callers that need the full S-run structure
// (connectivity of deep layers, diameter growth) get every state.
std::vector<std::vector<StateId>> reachable_by_depth(LayeredModel& model,
                                                     int depth);

// Flattened version of reachable_by_depth.
std::vector<StateId> reachable_states(LayeredModel& model, int depth);

}  // namespace lacon
