// Breadth-first enumeration of the layered run tree.
#pragma once

#include <vector>

#include "core/model.hpp"
#include "runtime/guard.hpp"

namespace lacon {

// All states reachable from the initial states in at most `depth` layers,
// deduplicated, grouped by the depth at which they were first discovered.
// Quiescence does not prune here: callers that need the full S-run structure
// (connectivity of deep layers, diameter growth) get every state.
std::vector<std::vector<StateId>> reachable_by_depth(LayeredModel& model,
                                                     int depth);

// Guarded exploration. The guard is probed per frontier state during the
// parallel expansion and the state/memory budget is evaluated against the
// arena population at every depth boundary; a trip truncates to *complete
// levels only* — the returned value never contains a partially-discovered
// level. `completed` is the depth reached (value.size() - 1). Budget
// truncation is deterministic across worker counts: the arena population at
// a depth boundary does not depend on thread scheduling, so a budget of k
// states truncates at the same depth with the same levels under
// LACON_THREADS=1 and under 16 workers.
guard::Partial<std::vector<std::vector<StateId>>> reachable_by_depth(
    LayeredModel& model, int depth, const guard::Guard& g);

// Flattened version of reachable_by_depth.
std::vector<StateId> reachable_states(LayeredModel& model, int depth);

}  // namespace lacon
