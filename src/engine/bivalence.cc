#include "engine/bivalence.hpp"

namespace lacon {

BivalentRunResult extend_bivalent_run_from(ValenceEngine& engine,
                                           StateId start, int depth) {
  BivalentRunResult result;
  if (!engine.valence(start).bivalent()) {
    result.stuck_reason = "start state is not bivalent";
    return result;
  }
  result.run.push_back(start);
  StateId cur = start;
  for (int d = 0; d < depth; ++d) {
    const std::vector<StateId>& layer = engine.model().layer(cur);
    const std::optional<StateId> next = engine.find_bivalent(layer);
    if (!next) {
      result.stuck_reason =
          "no bivalent successor at depth " + std::to_string(d);
      return result;
    }
    cur = *next;
    result.run.push_back(cur);
  }
  result.complete = true;
  return result;
}

BivalentRunResult extend_bivalent_run(ValenceEngine& engine, int depth) {
  LayeredModel& model = engine.model();
  const std::optional<StateId> start =
      engine.find_bivalent(model.initial_states());
  if (!start) {
    BivalentRunResult result;
    result.stuck_reason = "no bivalent initial state";
    return result;
  }
  return extend_bivalent_run_from(engine, *start, depth);
}

}  // namespace lacon
