#include "engine/bivalence.hpp"

#include "runtime/fault.hpp"

namespace lacon {

BivalentRunResult extend_bivalent_run_from(ValenceEngine& engine,
                                           StateId start, int depth,
                                           const guard::Guard& g) {
  BivalentRunResult result;
  LayeredModel& model = engine.model();
  try {
    if (!engine.valence(start).bivalent()) {
      result.stuck_reason = "start state is not bivalent";
      return result;
    }
    result.run.push_back(start);
    StateId cur = start;
    for (int d = 0; d < depth; ++d) {
      if (g.check(model.num_states(), model.memory_footprint()) !=
          guard::TruncationReason::kNone) {
        result.truncation = g.reason();
        result.stuck_reason = std::string("truncated: ") +
                              guard::to_string(result.truncation);
        return result;
      }
      const std::vector<StateId>& layer = model.layer(cur);
      const std::optional<StateId> next = engine.find_bivalent(layer);
      if (!next) {
        result.stuck_reason =
            "no bivalent successor at depth " + std::to_string(d);
        return result;
      }
      cur = *next;
      result.run.push_back(cur);
    }
  } catch (const fault::InjectedAllocError&) {
    if (g.never_trips()) throw;  // inert guard: behave like the raw call
    g.note_memory_exhausted();
    result.truncation = g.reason();
    result.stuck_reason =
        std::string("truncated: ") + guard::to_string(result.truncation);
    return result;
  }
  result.complete = true;
  return result;
}

BivalentRunResult extend_bivalent_run_from(ValenceEngine& engine,
                                           StateId start, int depth) {
  guard::ScopedGuard scoped(guard::process_guard_spec());
  return extend_bivalent_run_from(engine, start, depth, scoped.get());
}

BivalentRunResult extend_bivalent_run(ValenceEngine& engine, int depth,
                                      const guard::Guard& g) {
  LayeredModel& model = engine.model();
  std::optional<StateId> start;
  try {
    start = engine.find_bivalent(model.initial_states());
  } catch (const fault::InjectedAllocError&) {
    if (g.never_trips()) throw;  // inert guard: behave like the raw call
    g.note_memory_exhausted();
    BivalentRunResult result;
    result.truncation = g.reason();
    result.stuck_reason =
        std::string("truncated: ") + guard::to_string(result.truncation);
    return result;
  }
  if (!start) {
    BivalentRunResult result;
    result.stuck_reason = "no bivalent initial state";
    return result;
  }
  return extend_bivalent_run_from(engine, *start, depth, g);
}

BivalentRunResult extend_bivalent_run(ValenceEngine& engine, int depth) {
  guard::ScopedGuard scoped(guard::process_guard_spec());
  return extend_bivalent_run(engine, depth, scoped.get());
}

}  // namespace lacon
