#include "engine/lemmas.hpp"

#include <algorithm>

#include "engine/explore.hpp"
#include "relation/similarity.hpp"
#include "util/bitset.hpp"

namespace lacon {
namespace {

int undecided_non_failed(LayeredModel& model, StateId x) {
  const StateRef s = model.state(x);
  const ProcessSet failed = model.failed_at(x);
  int count = 0;
  for (ProcessId i = 0; i < model.n(); ++i) {
    if (failed.contains(i)) continue;
    if (s.decisions[static_cast<std::size_t>(i)] == kUndecided) ++count;
  }
  return count;
}

int decided_count(LayeredModel& model, StateId x) {
  const StateRef s = model.state(x);
  return static_cast<int>(std::count_if(
      s.decisions.begin(), s.decisions.end(),
      [](Value d) { return d != kUndecided; }));
}

std::string state_str(StateId x) { return "state " + std::to_string(x); }

}  // namespace

CheckResult check_lemma_3_1(LayeredModel& model, int t, int depth, int horizon,
                            Exactness mode) {
  CheckResult result;
  ValenceEngine engine(model, horizon, mode);
  for (StateId x : reachable_states(model, depth)) {
    ++result.checked;
    if (!engine.valence(x).bivalent()) continue;
    const int undecided = undecided_non_failed(model, x);
    if (undecided < model.n() - t) {
      result.ok = false;
      result.detail = state_str(x) + " is bivalent but only " +
                      std::to_string(undecided) +
                      " non-failed processes are undecided (need >= " +
                      std::to_string(model.n() - t) + ")";
      return result;
    }
  }
  return result;
}

CheckResult check_lemma_3_2(LayeredModel& model, int depth, int horizon,
                            Exactness mode) {
  CheckResult result;
  ValenceEngine engine(model, horizon, mode);
  for (StateId x : reachable_states(model, depth)) {
    ++result.checked;
    if (!engine.valence(x).bivalent()) continue;
    if (decided_count(model, x) != 0) {
      result.ok = false;
      result.detail =
          state_str(x) + " is bivalent but a process has already decided";
      return result;
    }
  }
  return result;
}

CheckResult check_lemma_3_2_contrapositive(LayeredModel& model, int depth,
                                           int horizon, Exactness mode) {
  CheckResult result;
  ValenceEngine engine(model, horizon, mode);
  for (StateId x : reachable_states(model, depth)) {
    if (!engine.valence(x).bivalent()) continue;
    if (decided_count(model, x) == 0) continue;
    ++result.checked;
    // Search the subtree below x for two non-failed processes decided on
    // different values.
    bool violation = false;
    std::vector<StateId> frontier = {x};
    DenseBitset seen(model.num_states());
    seen.insert(x);
    for (int d = 0; d <= horizon && !violation; ++d) {
      std::vector<StateId> next;
      for (StateId y : frontier) {
        if (decided_valences(model, y).bivalent()) {
          violation = true;
          break;
        }
        if (d < horizon) {
          for (StateId z : model.layer(y)) {
            if (seen.insert(z)) next.push_back(z);
          }
        }
      }
      frontier = std::move(next);
    }
    if (!violation) {
      result.ok = false;
      result.detail = state_str(x) +
                      " is bivalent with a decided process, yet no agreement "
                      "violation is reachable";
      return result;
    }
  }
  return result;
}

CheckResult check_lemma_3_3(LayeredModel& model, int depth, int horizon,
                            Exactness mode) {
  CheckResult result;
  ValenceEngine engine(model, horizon, mode);
  // Lemma 3.3 applies when the system displays an arbitrary crash failure
  // with respect to the pair, i.e. when some similarity witness j can
  // actually be silenced forever within the model's failure budget (the
  // paper's side condition "with respect to every set X in which fewer than
  // t failures are recorded"). In the 1-resilient models failed_at is empty
  // and the condition is vacuous.
  auto crashable_witness = [&](StateId x, StateId y) {
    const ProcessSet failed = model.failed_at(x) | model.failed_at(y);
    for (ProcessId j = 0; j < model.n(); ++j) {
      if (!model.agree_modulo(x, y, j)) continue;
      ProcessSet others = ProcessSet::all(model.n()) - failed;
      others.erase(j);
      if (others.empty()) continue;  // similarity needs a non-failed i != j
      if ((failed | ProcessSet::single(j)).size() <= model.max_faulty()) {
        return true;
      }
    }
    return false;
  };
  for (const auto& level : reachable_by_depth(model, depth)) {
    // The similar pairs of the level come from the fingerprint-indexed
    // similarity graph instead of an O(|level|^2) agree_modulo sweep; its
    // neighbor rows are ascending, so pairs arrive in the same (a, b)
    // order the naive double loop visited.
    const Graph sim = similarity_graph(model, level);
    for (std::size_t a = 0; a < level.size(); ++a) {
      for (std::size_t b : sim.neighbors(a)) {
        if (b <= a) continue;
        if (!crashable_witness(level[a], level[b])) continue;
        ++result.checked;
        const ValenceInfo va = engine.valence(level[a]);
        const ValenceInfo vb = engine.valence(level[b]);
        if (!va.exact || !vb.exact) {
          result.ok = false;
          result.detail = "valence not exact at horizon " +
                          std::to_string(horizon) + "; increase it";
          return result;
        }
        if (!((va.v0 && vb.v0) || (va.v1 && vb.v1))) {
          result.ok = false;
          result.detail = state_str(level[a]) + " ~s " + state_str(level[b]) +
                          " but they have no shared valence";
          return result;
        }
      }
    }
  }
  return result;
}

CheckResult check_lemma_3_6(LayeredModel& model, int horizon, Exactness mode) {
  CheckResult result;
  const std::vector<StateId>& con0 = model.initial_states();
  result.checked = con0.size();
  if (!similarity_connected(model, con0)) {
    result.ok = false;
    result.detail = "Con_0 is not similarity connected";
    return result;
  }
  ValenceEngine engine(model, horizon, mode);
  for (StateId x : con0) {
    if (!engine.valence(x).exact) {
      result.ok = false;
      result.detail = "initial-state valence not exact at horizon " +
                      std::to_string(horizon);
      return result;
    }
  }
  if (!engine.valence_connected(con0)) {
    result.ok = false;
    result.detail = "Con_0 is not valence connected";
    return result;
  }
  if (!engine.find_bivalent(con0)) {
    result.ok = false;
    result.detail = "no bivalent initial state found";
    return result;
  }
  return result;
}

CheckResult check_layer_connectivity(
    LayeredModel& model, int depth, int horizon, bool expect_similarity,
    Exactness mode, const std::function<bool(StateId)>& filter) {
  CheckResult result;
  ValenceEngine engine(model, horizon, mode);
  for (StateId x : reachable_states(model, depth)) {
    if (filter && !filter(x)) continue;
    ++result.checked;
    const std::vector<StateId>& layer = model.layer(x);
    if (expect_similarity && !similarity_connected(model, layer)) {
      result.ok = false;
      result.detail =
          "S(" + std::to_string(x) + ") is not similarity connected";
      return result;
    }
    for (StateId y : layer) {
      if (!engine.valence(y).exact) {
        result.ok = false;
        result.detail = "layer valence not exact at horizon " +
                        std::to_string(horizon);
        return result;
      }
    }
    if (!engine.valence_connected(layer)) {
      result.ok = false;
      result.detail = "S(" + std::to_string(x) + ") is not valence connected";
      return result;
    }
  }
  return result;
}

CheckResult check_lemma_6_1(LayeredModel& model, int t, int horizon,
                            Exactness mode) {
  CheckResult result;
  ValenceEngine engine(model, horizon, mode);
  const std::optional<StateId> start =
      engine.find_bivalent(model.initial_states());
  if (!start) {
    result.ok = false;
    result.detail = "no bivalent initial state";
    return result;
  }
  StateId cur = *start;
  ++result.checked;  // the bivalent initial state x^0 itself
  // Build x^0, ..., x^{t-1}: each bivalent, |failed(x^m)| <= m.
  for (int m = 1; m <= t - 1; ++m) {
    const std::vector<StateId>& layer = model.layer(cur);
    std::optional<StateId> next;
    for (StateId y : layer) {
      if (engine.valence(y).bivalent()) {
        next = y;
        break;
      }
    }
    if (!next) {
      result.ok = false;
      result.detail = "no bivalent successor at layer " + std::to_string(m);
      return result;
    }
    if (model.failed_at(*next).size() > m) {
      result.ok = false;
      result.detail = "layer " + std::to_string(m) + " has more than " +
                      std::to_string(m) + " failed processes";
      return result;
    }
    cur = *next;
    ++result.checked;
  }
  return result;
}

CheckResult check_lemma_6_2(LayeredModel& model, int depth, int horizon,
                            Exactness mode) {
  CheckResult result;
  ValenceEngine engine(model, horizon, mode);
  for (StateId x : reachable_states(model, depth)) {
    if (!engine.valence(x).bivalent()) continue;
    ++result.checked;
    const std::vector<StateId>& layer = model.layer(x);
    const bool found = std::any_of(layer.begin(), layer.end(), [&](StateId y) {
      return undecided_non_failed(model, y) > 0;
    });
    if (!found) {
      result.ok = false;
      result.detail = state_str(x) +
                      " is bivalent but every layer successor has all "
                      "non-failed processes decided";
      return result;
    }
  }
  return result;
}

CheckResult check_lemma_6_4(LayeredModel& model, int t, int horizon,
                            Exactness mode) {
  CheckResult result;
  ValenceEngine engine(model, horizon, mode);
  // Explore t+1 layers: executions x^0 ... x^k x^{k+1} with k+1 <= t+1.
  const auto levels = reachable_by_depth(model, t + 1);
  for (std::size_t k = 0; k + 1 < levels.size(); ++k) {
    for (StateId x : levels[k]) {
      if (model.failed_at(x).size() > static_cast<int>(k)) continue;
      for (StateId y : model.layer(x)) {
        // A failure-free (k+1)-st layer keeps the failed set unchanged.
        if (!(model.failed_at(y) == model.failed_at(x))) continue;
        ++result.checked;
        const ValenceInfo v = engine.valence(y);
        if (!v.exact) {
          result.ok = false;
          result.detail = "valence not exact; increase horizon";
          return result;
        }
        if (v.bivalent()) {
          result.ok = false;
          result.detail = state_str(y) + " at round " + std::to_string(k + 1) +
                          " is bivalent despite <= " + std::to_string(k) +
                          " failures and a failure-free round";
          return result;
        }
      }
    }
  }
  return result;
}

}  // namespace lacon
