#include "relation/similarity_index.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "relation/similarity.hpp"
#include "runtime/parallel.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace.hpp"

namespace lacon {

SimilarityStrategy similarity_strategy() {
  const char* env = std::getenv("LACON_SIMILARITY");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "indexed") == 0) {
    return SimilarityStrategy::kIndexed;
  }
  if (std::strcmp(env, "naive") == 0) return SimilarityStrategy::kNaive;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "lacon: unknown LACON_SIMILARITY='%s', using 'indexed'\n",
                 env);
  }
  return SimilarityStrategy::kIndexed;
}

Graph similarity_graph_naive(LayeredModel& model,
                             const std::vector<StateId>& X) {
  return Graph::from_relation(X.size(), [&](std::size_t a, std::size_t b) {
    return similar(model, X[a], X[b]);
  });
}

guard::Partial<Graph> similarity_graph_indexed(LayeredModel& model,
                                               const std::vector<StateId>& X,
                                               const guard::Guard& g) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("relation.index_time"));
  const std::size_t m = X.size();
  guard::Partial<Graph> out{Graph(m)};
  if (m < 2) {
    out.completed = 0;
    out.truncation = g.reason();
    return out;
  }
  const int n = model.n();

  // Fingerprint table, one row per state — embarrassingly parallel. Rows
  // come from the model's per-state memo (LayeredModel::fingerprint_row):
  // the first sweep over a state hashes and publishes its row, later sweeps
  // — and sweeps after a lacon::store warm start — only read. A trip here
  // leaves nothing usable (candidates need every row), so the result
  // degrades to the empty graph.
  std::vector<const std::uint64_t*> rows(m);
  std::size_t hashed = 0;
  {
    LACON_TRACE_PHASE("similarity", "fingerprint", m);
    hashed = runtime::parallel_for_guarded(g, m, [&](std::size_t i) {
      rows[i] = model.fingerprint_row(X[i]);
    });
  }
  if (hashed < m) {
    out.truncation = g.reason();
    return out;
  }

  // Bucket states by (erased coordinate, fingerprint): sorting the
  // (fingerprint, index) column groups equal fingerprints contiguously.
  // Every pair with agree_modulo(x, y, j) true lands in j's bucket of their
  // common fingerprint, so the union over j covers all ~s edges. Probed per
  // erased coordinate — the bucketing is serial but O(n) passes long.
  std::uint64_t buckets = 0;
  std::vector<Graph::Edge> candidates;
  std::vector<std::pair<std::uint64_t, Graph::Vertex>> column(m);
  {
    LACON_TRACE_SPAN_ARG("similarity", "bucket", m);
    for (ProcessId j = 0; j < n; ++j) {
      if (g.tripped()) {
        out.truncation = g.reason();
        return out;
      }
      for (std::size_t i = 0; i < m; ++i) {
        column[i] = {rows[i][static_cast<std::size_t>(j)],
                     static_cast<Graph::Vertex>(i)};
      }
      std::sort(column.begin(), column.end());
      for (std::size_t lo = 0; lo < m;) {
        std::size_t hi = lo + 1;
        while (hi < m && column[hi].first == column[lo].first) ++hi;
        if (hi - lo >= 2) {
          ++buckets;
          for (std::size_t a = lo; a < hi; ++a) {
            for (std::size_t b = a + 1; b < hi; ++b) {
              candidates.emplace_back(std::min(column[a].second,
                                               column[b].second),
                                      std::max(column[a].second,
                                               column[b].second));
            }
          }
        }
        lo = hi;
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  }
  stats.counter("relation.index_buckets").add(buckets);
  stats.counter("relation.index_candidates").add(candidates.size());

  // Confirm candidates with the exact relation, in ordered chunks: the
  // candidate list is (a, b)-lexicographically sorted, so concatenating the
  // per-chunk survivors reproduces exactly the naive sweep's edge sequence;
  // under truncation the survivors of the confirmed candidate prefix do.
  LACON_TRACE_PHASE("similarity", "confirm", candidates.size());
  const runtime::PartialChunks<std::vector<Graph::Edge>> chunks =
      runtime::parallel_map_chunks_guarded<std::vector<Graph::Edge>>(
          g, candidates.size(), [&](std::size_t begin, std::size_t end) {
            std::vector<Graph::Edge> chunk_edges;
            for (std::size_t k = begin; k < end; ++k) {
              const auto [a, b] = candidates[k];
              if (similar(model, X[a], X[b])) {
                chunk_edges.push_back(candidates[k]);
              }
            }
            return chunk_edges;
          });
  stats.counter("relation.pairs_evaluated").add(chunks.completed);
  std::size_t confirmed = 0;
  for (const auto& chunk : chunks.values) confirmed += chunk.size();
  stats.counter("relation.index_confirmed").add(confirmed);
  stats.counter("relation.index_rejected").add(chunks.completed - confirmed);

  std::vector<Graph::Edge> edges;
  edges.reserve(confirmed);
  for (const auto& chunk : chunks.values) {
    edges.insert(edges.end(), chunk.begin(), chunk.end());
  }
  out.value = Graph::from_sorted_edges(m, std::move(edges));
  out.completed = chunks.completed;
  out.truncation = g.reason();
  return out;
}

Graph similarity_graph_indexed(LayeredModel& model,
                               const std::vector<StateId>& X) {
  guard::ScopedGuard scoped(guard::process_guard_spec());
  return similarity_graph_indexed(model, X, scoped.get()).value;
}

}  // namespace lacon
