#include "relation/graph.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace lacon {

namespace {
constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();
}  // namespace

Graph::Graph(std::size_t size) : adjacency_(size) {}

Graph Graph::from_relation(
    std::size_t size,
    const std::function<bool(std::size_t, std::size_t)>& related) {
  Graph g(size);
  for (std::size_t a = 0; a < size; ++a) {
    for (std::size_t b = a + 1; b < size; ++b) {
      if (related(a, b)) g.add_edge(a, b);
    }
  }
  return g;
}

void Graph::add_edge(std::size_t a, std::size_t b) {
  assert(a < size() && b < size() && a != b);
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++edges_;
}

std::vector<std::size_t> Graph::bfs_distances(std::size_t source) const {
  std::vector<std::size_t> dist(size(), kUnreached);
  std::queue<std::size_t> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (std::size_t w : adjacency_[v]) {
      if (dist[w] == kUnreached) {
        dist[w] = dist[v] + 1;
        queue.push(w);
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (size() <= 1) return true;
  const std::vector<std::size_t> dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::size_t d) { return d == kUnreached; });
}

std::vector<std::size_t> Graph::components() const {
  std::vector<std::size_t> label(size(), kUnreached);
  std::size_t next = 0;
  for (std::size_t v = 0; v < size(); ++v) {
    if (label[v] != kUnreached) continue;
    const std::size_t mine = next++;
    std::queue<std::size_t> queue;
    label[v] = mine;
    queue.push(v);
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop();
      for (std::size_t w : adjacency_[u]) {
        if (label[w] == kUnreached) {
          label[w] = mine;
          queue.push(w);
        }
      }
    }
  }
  return label;
}

std::optional<std::size_t> Graph::diameter() const {
  if (size() == 0) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t v = 0; v < size(); ++v) {
    const std::vector<std::size_t> dist = bfs_distances(v);
    for (std::size_t d : dist) {
      if (d == kUnreached) return std::nullopt;
      best = std::max(best, d);
    }
  }
  return best;
}

std::optional<std::size_t> Graph::distance(std::size_t a, std::size_t b) const {
  const std::vector<std::size_t> dist = bfs_distances(a);
  if (dist[b] == kUnreached) return std::nullopt;
  return dist[b];
}

std::vector<std::size_t> Graph::shortest_path(std::size_t a,
                                              std::size_t b) const {
  // BFS from b so we can walk a -> b by strictly decreasing distance.
  const std::vector<std::size_t> dist = bfs_distances(b);
  if (dist[a] == kUnreached) return {};
  std::vector<std::size_t> path = {a};
  std::size_t cur = a;
  while (cur != b) {
    for (std::size_t w : adjacency_[cur]) {
      if (dist[w] + 1 == dist[cur]) {
        cur = w;
        path.push_back(w);
        break;
      }
    }
  }
  return path;
}

}  // namespace lacon
