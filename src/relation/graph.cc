#include "relation/graph.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <utility>

#include "runtime/parallel.hpp"
#include "runtime/stats.hpp"
#include "runtime/trace.hpp"

namespace lacon {

namespace {

constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();

// Unordered pairs (a, b), a < b, of {0..size-1} are flattened
// lexicographically; row a starts at pair index a*(2*size - a - 1)/2.
std::size_t pair_row_start(std::size_t size, std::size_t a) {
  return a * (2 * size - a - 1) / 2;
}

// The row containing flattened pair index k: the largest a with
// row_start(a) <= k.
std::size_t pair_row_of(std::size_t size, std::size_t k) {
  std::size_t lo = 0, hi = size - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (pair_row_start(size, mid) <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace

Graph::Graph(std::size_t size) : size_(size) {
  assert(size < std::numeric_limits<Vertex>::max());
}

Graph Graph::from_relation(std::size_t size,
                           std::function<bool(std::size_t, std::size_t)>
                               related) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("relation.pair_sweep_time"));
  const std::size_t pairs = size < 2 ? 0 : size * (size - 1) / 2;
  stats.counter("relation.pairs_evaluated").add(pairs);
  LACON_TRACE_PHASE("relation", "pair_sweep", pairs);

  // Each ordered chunk of the flattened pair-index space yields its edges in
  // lexicographic (a, b) order; concatenating the chunks in order therefore
  // reproduces exactly the serial sweep's edge sequence.
  const std::vector<std::vector<Edge>> chunks =
      runtime::parallel_map_chunks<std::vector<Edge>>(
          pairs, [&](std::size_t begin, std::size_t end) {
            std::vector<Edge> out;
            std::size_t a = pair_row_of(size, begin);
            std::size_t b = a + 1 + (begin - pair_row_start(size, a));
            for (std::size_t k = begin; k < end; ++k) {
              if (related(a, b)) {
                out.emplace_back(static_cast<Vertex>(a),
                                 static_cast<Vertex>(b));
              }
              if (++b == size) {
                ++a;
                b = a + 1;
              }
            }
            return out;
          });

  std::size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  std::vector<Edge> edges;
  edges.reserve(total);
  for (const auto& chunk : chunks) {
    edges.insert(edges.end(), chunk.begin(), chunk.end());
  }
  return from_sorted_edges(size, std::move(edges));
}

Graph Graph::from_sorted_edges(std::size_t size, std::vector<Edge> edges) {
  assert(std::is_sorted(edges.begin(), edges.end()));
  Graph g(size);
  g.edge_list_ = std::move(edges);
  g.ensure_csr();
  return g;
}

void Graph::add_edge(std::size_t a, std::size_t b) {
  assert(a < size() && b < size() && a != b);
  edge_list_.emplace_back(static_cast<Vertex>(a), static_cast<Vertex>(b));
  csr_stale_ = true;
}

void Graph::ensure_csr() const {
  if (!csr_stale_) return;
  offsets_.assign(size_ + 1, 0);
  for (const Edge& e : edge_list_) {
    ++offsets_[e.first + 1];
    ++offsets_[e.second + 1];
  }
  for (std::size_t v = 0; v < size_; ++v) offsets_[v + 1] += offsets_[v];
  csr_.resize(2 * edge_list_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edge_list_) {
    csr_[cursor[e.first]++] = e.second;
    csr_[cursor[e.second]++] = e.first;
  }
  csr_stale_ = false;
}

std::span<const Graph::Vertex> Graph::neighbors(std::size_t v) const {
  ensure_csr();
  return std::span<const Vertex>(csr_.data() + offsets_[v],
                                 offsets_[v + 1] - offsets_[v]);
}

std::vector<std::size_t> Graph::bfs_distances(std::size_t source) const {
  // Callers hold a finalized CSR (ensure_csr() ran before any parallel
  // fan-out), so this reads offsets_/csr_ directly.
  std::vector<std::size_t> dist(size(), kUnreached);
  std::queue<std::size_t> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (std::size_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      const std::size_t w = csr_[i];
      if (dist[w] == kUnreached) {
        dist[w] = dist[v] + 1;
        queue.push(w);
      }
    }
  }
  return dist;
}

std::size_t Graph::bfs_eccentricity(std::size_t source,
                                    EccScratch& s) const {
  const std::size_t n = size();
  s.visited.reset(n);
  s.next.reset(n);
  s.frontier.resize(n);  // a level is at most the whole vertex set
  s.visited.mark(source);
  s.frontier[0] = static_cast<Vertex>(source);
  std::size_t frontier_len = 1;
  std::size_t reached = 1;
  std::size_t levels = 0;
  while (frontier_len != 0) {
    for (std::size_t i = 0; i < frontier_len; ++i) {
      const Vertex v = s.frontier[i];
      for (std::size_t e = offsets_[v]; e < offsets_[v + 1]; ++e) {
        s.next.mark(csr_[e]);
      }
    }
    frontier_len = s.next.drain_fresh_into(s.visited, s.frontier.data());
    if (frontier_len == 0) break;
    ++levels;
    reached += frontier_len;
  }
  return reached == n ? levels : kUnreached;
}

bool Graph::connected() const {
  if (size() <= 1) return true;
  ensure_csr();
  EccScratch scratch;
  return bfs_eccentricity(0, scratch) != kUnreached;
}

std::vector<std::size_t> Graph::components() const {
  ensure_csr();
  std::vector<std::size_t> label(size(), kUnreached);
  std::size_t next = 0;
  for (std::size_t v = 0; v < size(); ++v) {
    if (label[v] != kUnreached) continue;
    const std::size_t mine = next++;
    std::queue<std::size_t> queue;
    label[v] = mine;
    queue.push(v);
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop();
      for (std::size_t w : neighbors(u)) {
        if (label[w] == kUnreached) {
          label[w] = mine;
          queue.push(w);
        }
      }
    }
  }
  return label;
}

guard::Partial<std::optional<std::size_t>> Graph::diameter(
    const guard::Guard& g) const {
  guard::Partial<std::optional<std::size_t>> out;
  if (size() == 0) {
    out.value = std::nullopt;
    return out;
  }
  ensure_csr();
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("relation.diameter_time"));
  LACON_TRACE_PHASE("relation", "diameter", size());
  // Record every source's eccentricity, then fold only the completed prefix:
  // a truncated value depends on [0, completed) alone, never on which
  // straggler sources also happened to finish.
  std::vector<std::size_t> ecc(size(), 0);
  const std::size_t done =
      runtime::parallel_for_guarded(g, size(), [&](std::size_t v) {
        // One scratch per worker thread: the BFS bit sets and frontier are
        // reset per source but their allocations persist across sources.
        static thread_local EccScratch scratch;
        ecc[v] = bfs_eccentricity(v, scratch);
      });
  stats.counter("relation.diameter_sources").add(done);
  out.completed = done;
  out.truncation = g.reason();
  std::size_t best = 0;
  for (std::size_t v = 0; v < done; ++v) {
    if (ecc[v] == kUnreached) {
      // One full BFS that misses a vertex proves disconnection; the answer
      // cannot change, so report it complete.
      out.value = std::nullopt;
      out.truncation = guard::TruncationReason::kNone;
      out.completed = size();
      return out;
    }
    best = std::max(best, ecc[v]);
  }
  if (done > 0) out.value = best;  // no sources finished -> no bound at all
  return out;
}

std::optional<std::size_t> Graph::diameter() const {
  const guard::GuardSpec& spec = guard::process_guard_spec();
  if (spec.limited()) {
    guard::ScopedGuard scoped(spec);
    return diameter(scoped.get()).value;
  }
  if (size() == 0) return std::nullopt;
  ensure_csr();
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("relation.diameter_time"));
  LACON_TRACE_PHASE("relation", "diameter", size());
  stats.counter("relation.diameter_sources").add(size());
  // Per-chunk eccentricity maxima, merged by max — commutative, so the
  // result is the same for every worker count. kUnreached marks a
  // disconnected chunk and dominates the merge.
  const std::vector<std::size_t> partial =
      runtime::parallel_map_chunks<std::size_t>(
          size(), [&](std::size_t begin, std::size_t end) {
            EccScratch scratch;  // reused across this chunk's sources
            std::size_t best = 0;
            for (std::size_t v = begin; v < end; ++v) {
              const std::size_t e = bfs_eccentricity(v, scratch);
              if (e == kUnreached) return kUnreached;
              best = std::max(best, e);
            }
            return best;
          });
  std::size_t best = 0;
  for (std::size_t p : partial) {
    if (p == kUnreached) return std::nullopt;
    best = std::max(best, p);
  }
  return best;
}

std::optional<std::size_t> Graph::distance(std::size_t a, std::size_t b) const {
  ensure_csr();
  const std::vector<std::size_t> dist = bfs_distances(a);
  if (dist[b] == kUnreached) return std::nullopt;
  return dist[b];
}

std::vector<std::size_t> Graph::shortest_path(std::size_t a,
                                              std::size_t b) const {
  // BFS from b so we can walk a -> b by strictly decreasing distance.
  ensure_csr();
  const std::vector<std::size_t> dist = bfs_distances(b);
  if (dist[a] == kUnreached) return {};
  std::vector<std::size_t> path = {a};
  std::size_t cur = a;
  while (cur != b) {
    for (std::size_t w : neighbors(cur)) {
      if (dist[w] + 1 == dist[cur]) {
        cur = w;
        path.push_back(w);
        break;
      }
    }
  }
  return path;
}

}  // namespace lacon
