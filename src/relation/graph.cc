#include "relation/graph.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <utility>

#include "runtime/parallel.hpp"
#include "runtime/stats.hpp"

namespace lacon {

namespace {

constexpr std::size_t kUnreached = std::numeric_limits<std::size_t>::max();

// Unordered pairs (a, b), a < b, of {0..size-1} are flattened
// lexicographically; row a starts at pair index a*(2*size - a - 1)/2.
std::size_t pair_row_start(std::size_t size, std::size_t a) {
  return a * (2 * size - a - 1) / 2;
}

// The row containing flattened pair index k: the largest a with
// row_start(a) <= k.
std::size_t pair_row_of(std::size_t size, std::size_t k) {
  std::size_t lo = 0, hi = size - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi + 1) / 2;
    if (pair_row_start(size, mid) <= k) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace

Graph::Graph(std::size_t size) : adjacency_(size) {}

Graph Graph::from_relation(std::size_t size,
                           std::function<bool(std::size_t, std::size_t)>
                               related) {
  auto& stats = runtime::Stats::global();
  runtime::ScopedTimer timer(stats.timer("relation.pair_sweep_time"));
  const std::size_t pairs = size < 2 ? 0 : size * (size - 1) / 2;
  stats.counter("relation.pairs_evaluated").add(pairs);

  using Edge = std::pair<std::size_t, std::size_t>;
  // Each ordered chunk of the flattened pair-index space yields its edges in
  // lexicographic (a, b) order; concatenating the chunks in order therefore
  // reproduces exactly the serial sweep's edge sequence.
  const std::vector<std::vector<Edge>> chunks =
      runtime::parallel_map_chunks<std::vector<Edge>>(
          pairs, [&](std::size_t begin, std::size_t end) {
            std::vector<Edge> out;
            std::size_t a = pair_row_of(size, begin);
            std::size_t b = a + 1 + (begin - pair_row_start(size, a));
            for (std::size_t k = begin; k < end; ++k) {
              if (related(a, b)) out.emplace_back(a, b);
              if (++b == size) {
                ++a;
                b = a + 1;
              }
            }
            return out;
          });

  Graph g(size);
  std::vector<std::size_t> degree(size, 0);
  for (const auto& chunk : chunks) {
    for (const Edge& e : chunk) {
      ++degree[e.first];
      ++degree[e.second];
    }
  }
  for (std::size_t v = 0; v < size; ++v) {
    g.adjacency_[v].reserve(degree[v]);
  }
  for (const auto& chunk : chunks) {
    for (const Edge& e : chunk) g.add_edge(e.first, e.second);
  }
  return g;
}

void Graph::add_edge(std::size_t a, std::size_t b) {
  assert(a < size() && b < size() && a != b);
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  ++edges_;
}

std::vector<std::size_t> Graph::bfs_distances(std::size_t source) const {
  std::vector<std::size_t> dist(size(), kUnreached);
  std::queue<std::size_t> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (std::size_t w : adjacency_[v]) {
      if (dist[w] == kUnreached) {
        dist[w] = dist[v] + 1;
        queue.push(w);
      }
    }
  }
  return dist;
}

bool Graph::connected() const {
  if (size() <= 1) return true;
  const std::vector<std::size_t> dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::size_t d) { return d == kUnreached; });
}

std::vector<std::size_t> Graph::components() const {
  std::vector<std::size_t> label(size(), kUnreached);
  std::size_t next = 0;
  for (std::size_t v = 0; v < size(); ++v) {
    if (label[v] != kUnreached) continue;
    const std::size_t mine = next++;
    std::queue<std::size_t> queue;
    label[v] = mine;
    queue.push(v);
    while (!queue.empty()) {
      const std::size_t u = queue.front();
      queue.pop();
      for (std::size_t w : adjacency_[u]) {
        if (label[w] == kUnreached) {
          label[w] = mine;
          queue.push(w);
        }
      }
    }
  }
  return label;
}

std::optional<std::size_t> Graph::diameter() const {
  if (size() == 0) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t v = 0; v < size(); ++v) {
    const std::vector<std::size_t> dist = bfs_distances(v);
    for (std::size_t d : dist) {
      if (d == kUnreached) return std::nullopt;
      best = std::max(best, d);
    }
  }
  return best;
}

std::optional<std::size_t> Graph::distance(std::size_t a, std::size_t b) const {
  const std::vector<std::size_t> dist = bfs_distances(a);
  if (dist[b] == kUnreached) return std::nullopt;
  return dist[b];
}

std::vector<std::size_t> Graph::shortest_path(std::size_t a,
                                              std::size_t b) const {
  // BFS from b so we can walk a -> b by strictly decreasing distance.
  const std::vector<std::size_t> dist = bfs_distances(b);
  if (dist[a] == kUnreached) return {};
  std::vector<std::size_t> path = {a};
  std::size_t cur = a;
  while (cur != b) {
    for (std::size_t w : adjacency_[cur]) {
      if (dist[w] + 1 == dist[cur]) {
        cur = w;
        path.push_back(w);
        break;
      }
    }
  }
  return path;
}

}  // namespace lacon
