// The similarity relation ~s of Definition 3.1 and the graphs it induces.
//
// x ~s y holds when there is a process j such that (i) x and y agree modulo
// j, and (ii) some process i != j is non-failed in both x and y. Similarity
// connectivity of a set X is connectivity of the graph (X, ~s); its diameter
// is the paper's s-diameter (Section 7).
#pragma once

#include <optional>
#include <vector>

#include "core/model.hpp"
#include "relation/graph.hpp"
#include "runtime/guard.hpp"

namespace lacon {

// True iff x ~s y in the given model.
bool similar(LayeredModel& model, StateId x, StateId y);

// The witness process j for x ~s y, if any (the smallest such j).
std::optional<ProcessId> similarity_witness(LayeredModel& model, StateId x,
                                            StateId y);

// The graph (X, ~s). Built through the erase-one fingerprint index
// (relation/similarity_index.hpp) unless LACON_SIMILARITY=naive selects the
// quadratic reference sweep; both strategies produce byte-identical graphs.
Graph similarity_graph(LayeredModel& model, const std::vector<StateId>& X);

bool similarity_connected(LayeredModel& model, const std::vector<StateId>& X);

// s-diameter of X; nullopt when (X, ~s) is disconnected.
std::optional<std::size_t> s_diameter(LayeredModel& model,
                                      const std::vector<StateId>& X);

// Guarded graph build. With the indexed strategy (the default) truncation
// is candidate-granular, see similarity_graph_indexed; under the naive
// reference sweep the guard is only consulted before the sweep starts (the
// quadratic ablation path stays deliberately simple), so a mid-sweep trip
// surfaces after it finishes.
guard::Partial<Graph> similarity_graph(LayeredModel& model,
                                       const std::vector<StateId>& X,
                                       const guard::Guard& g);

// Guarded s-diameter: graph build then diameter under the same guard. If
// the build itself was truncated, the value is disengaged (a diameter of a
// partial graph would bound nothing) and `completed` is 0; otherwise the
// semantics are Graph::diameter(g)'s.
guard::Partial<std::optional<std::size_t>> s_diameter(
    LayeredModel& model, const std::vector<StateId>& X,
    const guard::Guard& g);

}  // namespace lacon
