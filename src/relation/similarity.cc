#include "relation/similarity.hpp"

#include "relation/similarity_index.hpp"

namespace lacon {

std::optional<ProcessId> similarity_witness(LayeredModel& model, StateId x,
                                            StateId y) {
  const ProcessSet failed_both = model.failed_at(x) | model.failed_at(y);
  const int n = model.n();
  // Condition (ii) needs a process i != j non-failed in both states; the
  // candidate pool is loop-invariant. No survivors at all means no witness
  // can qualify, whatever agree_modulo says.
  const ProcessSet alive = ProcessSet::all(n) - failed_both;
  if (alive.empty()) return std::nullopt;
  const bool many_alive = alive.size() >= 2;
  for (ProcessId j = 0; j < n; ++j) {
    // With >= 2 survivors some i != j is always alive; with exactly one, j
    // must not be that survivor.
    if (!many_alive && alive.contains(j)) continue;
    if (model.agree_modulo(x, y, j)) return j;
  }
  return std::nullopt;
}

bool similar(LayeredModel& model, StateId x, StateId y) {
  return similarity_witness(model, x, y).has_value();
}

guard::Partial<Graph> similarity_graph(LayeredModel& model,
                                       const std::vector<StateId>& X,
                                       const guard::Guard& g) {
  if (similarity_strategy() == SimilarityStrategy::kNaive) {
    guard::Partial<Graph> out{Graph(X.size())};
    // Pre-check only: the quadratic reference sweep stays unguarded inside
    // (it exists to cross-check the index, not to run under budgets).
    if (g.tripped()) {
      out.truncation = g.reason();
      return out;
    }
    out.value = similarity_graph_naive(model, X);
    out.completed = X.size() < 2 ? 0 : X.size() * (X.size() - 1) / 2;
    out.truncation = g.reason();
    return out;
  }
  return similarity_graph_indexed(model, X, g);
}

Graph similarity_graph(LayeredModel& model, const std::vector<StateId>& X) {
  guard::ScopedGuard scoped(guard::process_guard_spec());
  return similarity_graph(model, X, scoped.get()).value;
}

bool similarity_connected(LayeredModel& model, const std::vector<StateId>& X) {
  return similarity_graph(model, X).connected();
}

guard::Partial<std::optional<std::size_t>> s_diameter(
    LayeredModel& model, const std::vector<StateId>& X,
    const guard::Guard& g) {
  guard::Partial<Graph> graph = similarity_graph(model, X, g);
  if (!graph.complete()) {
    guard::Partial<std::optional<std::size_t>> out;
    out.truncation = graph.truncation;
    return out;
  }
  return graph.value.diameter(g);
}

std::optional<std::size_t> s_diameter(LayeredModel& model,
                                      const std::vector<StateId>& X) {
  guard::ScopedGuard scoped(guard::process_guard_spec());
  return s_diameter(model, X, scoped.get()).value;
}

}  // namespace lacon
