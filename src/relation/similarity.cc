#include "relation/similarity.hpp"

namespace lacon {

std::optional<ProcessId> similarity_witness(LayeredModel& model, StateId x,
                                            StateId y) {
  const ProcessSet failed_both = model.failed_at(x) | model.failed_at(y);
  const int n = model.n();
  for (ProcessId j = 0; j < n; ++j) {
    if (!model.agree_modulo(x, y, j)) continue;
    // Need a process i != j non-failed in both states.
    ProcessSet others = ProcessSet::all(n) - failed_both;
    others.erase(j);
    if (!others.empty()) return j;
  }
  return std::nullopt;
}

bool similar(LayeredModel& model, StateId x, StateId y) {
  return similarity_witness(model, x, y).has_value();
}

Graph similarity_graph(LayeredModel& model, const std::vector<StateId>& X) {
  return Graph::from_relation(X.size(), [&](std::size_t a, std::size_t b) {
    return similar(model, X[a], X[b]);
  });
}

bool similarity_connected(LayeredModel& model, const std::vector<StateId>& X) {
  return similarity_graph(model, X).connected();
}

std::optional<std::size_t> s_diameter(LayeredModel& model,
                                      const std::vector<StateId>& X) {
  return similarity_graph(model, X).diameter();
}

}  // namespace lacon
