// Signature-indexed construction of the similarity graph (X, ~s).
//
// The naive sweep evaluates agree_modulo on all |X|(|X|-1)/2 pairs. But
// ~s is an equality-modulo-one-coordinate relation: x ~s y requires a
// process j with agree_modulo(x, y, j), and agree_modulo truth implies
// equality of the erase-j fingerprints (LayeredModel::similarity_fingerprint,
// a 64-bit hash of everything agree_modulo compares). So hashing each state
// once per erased coordinate and bucketing by (j, fingerprint) yields a
// candidate set that provably contains every ~s edge; each candidate is then
// confirmed with the exact relation (hash collisions must not create edges)
// and the confirmed edges, sorted (a, b)-lexicographically and deduplicated,
// rebuild the *byte-identical* graph the naive sweep produces — at
// O(|X| * n) hashing plus bucket-local verification instead of O(|X|^2).
//
// Strategy selection: LACON_SIMILARITY=naive forces the quadratic sweep
// (cross-checking, ablation benches), LACON_SIMILARITY=indexed (or unset)
// uses the index; any other value earns a one-line stderr warning and falls
// back to the index. relation/similarity.hpp's similarity_graph()
// dispatches.
#pragma once

#include <vector>

#include "core/model.hpp"
#include "relation/graph.hpp"
#include "runtime/guard.hpp"

namespace lacon {

enum class SimilarityStrategy { kIndexed, kNaive };

// The strategy selected by the LACON_SIMILARITY environment variable,
// re-read on every call so tests and benches can toggle it at runtime.
SimilarityStrategy similarity_strategy();

// The graph (X, ~s) via the erase-one fingerprint index. Counters:
//   relation.index_buckets     (j, fingerprint) groups holding >= 2 states
//   relation.index_candidates  unique candidate pairs from shared buckets
//   relation.index_confirmed   candidates that are real ~s edges
//   relation.index_rejected    candidates discarded by the exact check
// Candidate confirmation also feeds relation.pairs_evaluated, making the
// naive-vs-indexed pair-count ablation directly comparable.
Graph similarity_graph_indexed(LayeredModel& model,
                               const std::vector<StateId>& X);

// Guarded index build. `completed` counts confirmed candidate pairs: a
// truncated value is the graph of the confirmed prefix of the (sorted,
// deduplicated) candidate sequence — a subgraph of the full (X, ~s) whose
// edge list is a prefix of the canonical edge sequence. A trip during the
// fingerprint or bucketing phase yields an empty graph with completed == 0.
guard::Partial<Graph> similarity_graph_indexed(LayeredModel& model,
                                               const std::vector<StateId>& X,
                                               const guard::Guard& g);

// The quadratic reference sweep (Graph::from_relation over similar()).
Graph similarity_graph_naive(LayeredModel& model,
                             const std::vector<StateId>& X);

}  // namespace lacon
