// Small undirected-graph utilities used for the paper's connectivity notions:
// given a finite set X of states and a binary relation (~s or ~v), we form
// the graph (X, ~) and ask about connectedness and diameter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "runtime/guard.hpp"
#include "util/bitset.hpp"

namespace lacon {

// An undirected graph on vertices 0..size-1. Edges accumulate in an
// insertion-ordered edge list; queries read a CSR layout (an offsets array
// into one flat neighbor array) materialized lazily from that list. The CSR
// neighbor order reproduces the classic push-back adjacency-list order
// exactly — edge (a, b) appends b to a's row and a to b's row, in edge-list
// order — so graphs built from the same edge sequence are byte-identical
// regardless of layout history.
//
// Thread-safety: building (add_edge) and the *first* query finalize shared
// state and must not race with other accesses; afterwards all queries are
// const reads and safe to run concurrently (diameter() exploits this by
// fanning the all-sources BFS out over the parallel runtime).
class Graph {
 public:
  using Vertex = std::uint32_t;
  using Edge = std::pair<Vertex, Vertex>;

  explicit Graph(std::size_t size);

  // Builds the graph of a symmetric relation by evaluating `related` on all
  // unordered pairs. The sweep runs on the parallel runtime: the flattened
  // pair-index space is split into ordered chunks whose edge lists merge in
  // chunk order, so the resulting graph — adjacency order included — is
  // identical for every worker count. `related` must be safe to invoke
  // concurrently (all in-tree relations are read-only over the model); it is
  // taken by value so the sweep holds its own copy for the tasks' lifetime.
  static Graph from_relation(std::size_t size,
                             std::function<bool(std::size_t, std::size_t)>
                                 related);

  // Builds the graph from an explicit list of unordered edges (a < b),
  // already sorted (a, b)-lexicographically and deduplicated — the order
  // from_relation's full sweep produces. The similarity index and the
  // valence clique builder use this to bypass the pair sweep entirely while
  // producing byte-identical graphs.
  static Graph from_sorted_edges(std::size_t size, std::vector<Edge> edges);

  void add_edge(std::size_t a, std::size_t b);

  std::size_t size() const noexcept { return size_; }
  std::span<const Vertex> neighbors(std::size_t v) const;
  std::size_t edge_count() const noexcept { return edge_list_.size(); }

  bool connected() const;

  // Connected-component label per vertex, labels are 0..k-1 in first-seen
  // order.
  std::vector<std::size_t> components() const;

  // Diameter of the graph: the largest BFS eccentricity, computed by an
  // all-sources BFS parallelized over source chunks (max-merge is
  // order-independent, so the result is deterministic for every worker
  // count). nullopt when the graph is disconnected (infinite diameter) or
  // empty.
  std::optional<std::size_t> diameter() const;

  // Guarded diameter. `completed` counts BFS sources fully evaluated (a
  // contiguous prefix of the vertex space); a truncated result's engaged
  // value is the eccentricity maximum over exactly those sources — a lower
  // bound on the true diameter. If any completed source proves the graph
  // disconnected the answer (nullopt) is conclusive and the result is
  // reported complete even if the guard also tripped.
  guard::Partial<std::optional<std::size_t>> diameter(
      const guard::Guard& g) const;

  // Length of a shortest path between a and b; nullopt if not connected.
  std::optional<std::size_t> distance(std::size_t a, std::size_t b) const;

  // A shortest path from a to b (inclusive); empty if not connected.
  std::vector<std::size_t> shortest_path(std::size_t a, std::size_t b) const;

 private:
  // Reusable per-thread buffers for bfs_eccentricity: the visited/next bit
  // sets of the level-synchronous BFS plus the current frontier. reset()
  // between sources keeps the allocations.
  struct EccScratch {
    DenseBitset visited;
    DenseBitset next;
    std::vector<Vertex> frontier;
  };

  // Rebuilds offsets_/csr_ from edge_list_ if edges were added since the
  // last build. Counting pass over degrees, prefix-sum, cursor fill.
  void ensure_csr() const;
  std::vector<std::size_t> bfs_distances(std::size_t source) const;

  // Eccentricity of `source` by level-synchronous bitmap BFS: mark every
  // frontier neighbor into `next`, then one fused frontier_advance kernel
  // step (fresh = next & ~visited; visited |= fresh; emit fresh indices)
  // yields the following frontier. Level counts equal queue-BFS distances,
  // so the value matches max(bfs_distances(source)) exactly; returns
  // SIZE_MAX (kUnreached) when some vertex is unreachable. Requires a
  // finalized CSR.
  std::size_t bfs_eccentricity(std::size_t source, EccScratch& scratch) const;

  std::size_t size_ = 0;
  std::vector<Edge> edge_list_;
  mutable bool csr_stale_ = true;
  mutable std::vector<std::size_t> offsets_;  // size_ + 1 row boundaries
  mutable std::vector<Vertex> csr_;           // 2 * edge_count() entries
};

}  // namespace lacon
