// Small undirected-graph utilities used for the paper's connectivity notions:
// given a finite set X of states and a binary relation (~s or ~v), we form
// the graph (X, ~) and ask about connectedness and diameter.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

namespace lacon {

// An undirected graph on vertices 0..size-1 stored as adjacency lists.
class Graph {
 public:
  explicit Graph(std::size_t size);

  // Builds the graph of a symmetric relation by evaluating `related` on all
  // unordered pairs. The sweep runs on the parallel runtime: the flattened
  // pair-index space is split into ordered chunks whose edge lists merge in
  // chunk order, so the resulting graph — adjacency order included — is
  // identical for every worker count. `related` must be safe to invoke
  // concurrently (all in-tree relations are read-only over the model); it is
  // taken by value so the sweep holds its own copy for the tasks' lifetime.
  static Graph from_relation(std::size_t size,
                             std::function<bool(std::size_t, std::size_t)>
                                 related);

  void add_edge(std::size_t a, std::size_t b);

  std::size_t size() const noexcept { return adjacency_.size(); }
  const std::vector<std::size_t>& neighbors(std::size_t v) const {
    return adjacency_[v];
  }
  std::size_t edge_count() const noexcept { return edges_; }

  bool connected() const;

  // Connected-component label per vertex, labels are 0..k-1 in first-seen
  // order.
  std::vector<std::size_t> components() const;

  // Diameter of the graph: the largest BFS eccentricity. nullopt when the
  // graph is disconnected (infinite diameter) or empty.
  std::optional<std::size_t> diameter() const;

  // Length of a shortest path between a and b; nullopt if not connected.
  std::optional<std::size_t> distance(std::size_t a, std::size_t b) const;

  // A shortest path from a to b (inclusive); empty if not connected.
  std::vector<std::size_t> shortest_path(std::size_t a, std::size_t b) const;

 private:
  std::vector<std::size_t> bfs_distances(std::size_t source) const;

  std::vector<std::vector<std::size_t>> adjacency_;
  std::size_t edges_ = 0;
};

}  // namespace lacon
