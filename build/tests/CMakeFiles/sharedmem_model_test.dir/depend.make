# Empty dependencies file for sharedmem_model_test.
# This may be replaced when dependencies are built.
