file(REMOVE_RECURSE
  "CMakeFiles/sharedmem_model_test.dir/sharedmem_model_test.cc.o"
  "CMakeFiles/sharedmem_model_test.dir/sharedmem_model_test.cc.o.d"
  "sharedmem_model_test"
  "sharedmem_model_test.pdb"
  "sharedmem_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharedmem_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
