# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for msgpass_model_test.
