file(REMOVE_RECURSE
  "CMakeFiles/sync_model_test.dir/sync_model_test.cc.o"
  "CMakeFiles/sync_model_test.dir/sync_model_test.cc.o.d"
  "sync_model_test"
  "sync_model_test.pdb"
  "sync_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
