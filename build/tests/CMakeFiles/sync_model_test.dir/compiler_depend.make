# Empty compiler generated dependencies file for sync_model_test.
# This may be replaced when dependencies are built.
