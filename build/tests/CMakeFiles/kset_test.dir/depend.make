# Empty dependencies file for kset_test.
# This may be replaced when dependencies are built.
