file(REMOVE_RECURSE
  "CMakeFiles/kset_test.dir/kset_test.cc.o"
  "CMakeFiles/kset_test.dir/kset_test.cc.o.d"
  "kset_test"
  "kset_test.pdb"
  "kset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
