# Empty dependencies file for covering_test.
# This may be replaced when dependencies are built.
