file(REMOVE_RECURSE
  "CMakeFiles/snapshot_model_test.dir/snapshot_model_test.cc.o"
  "CMakeFiles/snapshot_model_test.dir/snapshot_model_test.cc.o.d"
  "snapshot_model_test"
  "snapshot_model_test.pdb"
  "snapshot_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
