file(REMOVE_RECURSE
  "CMakeFiles/iis_model_test.dir/iis_model_test.cc.o"
  "CMakeFiles/iis_model_test.dir/iis_model_test.cc.o.d"
  "iis_model_test"
  "iis_model_test.pdb"
  "iis_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iis_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
