# Empty compiler generated dependencies file for iis_model_test.
# This may be replaced when dependencies are built.
