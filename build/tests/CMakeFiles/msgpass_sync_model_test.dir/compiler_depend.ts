# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for msgpass_sync_model_test.
