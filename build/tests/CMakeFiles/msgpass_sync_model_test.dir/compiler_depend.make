# Empty compiler generated dependencies file for msgpass_sync_model_test.
# This may be replaced when dependencies are built.
