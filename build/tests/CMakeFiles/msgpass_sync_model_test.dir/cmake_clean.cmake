file(REMOVE_RECURSE
  "CMakeFiles/msgpass_sync_model_test.dir/msgpass_sync_model_test.cc.o"
  "CMakeFiles/msgpass_sync_model_test.dir/msgpass_sync_model_test.cc.o.d"
  "msgpass_sync_model_test"
  "msgpass_sync_model_test.pdb"
  "msgpass_sync_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgpass_sync_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
