# Empty compiler generated dependencies file for mobile_model_test.
# This may be replaced when dependencies are built.
