file(REMOVE_RECURSE
  "CMakeFiles/mobile_model_test.dir/mobile_model_test.cc.o"
  "CMakeFiles/mobile_model_test.dir/mobile_model_test.cc.o.d"
  "mobile_model_test"
  "mobile_model_test.pdb"
  "mobile_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
