# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/relation_test[1]_include.cmake")
include("/root/repo/build/tests/mobile_model_test[1]_include.cmake")
include("/root/repo/build/tests/sync_model_test[1]_include.cmake")
include("/root/repo/build/tests/sharedmem_model_test[1]_include.cmake")
include("/root/repo/build/tests/msgpass_model_test[1]_include.cmake")
include("/root/repo/build/tests/valence_test[1]_include.cmake")
include("/root/repo/build/tests/bivalence_test[1]_include.cmake")
include("/root/repo/build/tests/lemmas_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/covering_test[1]_include.cmake")
include("/root/repo/build/tests/protocols_test[1]_include.cmake")
include("/root/repo/build/tests/async_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/iis_model_test[1]_include.cmake")
include("/root/repo/build/tests/kset_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/conformance_test[1]_include.cmake")
include("/root/repo/build/tests/msgpass_sync_model_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_model_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/adopt_commit_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
