
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/decision_rule.cc" "src/CMakeFiles/lacon_core.dir/core/decision_rule.cc.o" "gcc" "src/CMakeFiles/lacon_core.dir/core/decision_rule.cc.o.d"
  "/root/repo/src/core/model.cc" "src/CMakeFiles/lacon_core.dir/core/model.cc.o" "gcc" "src/CMakeFiles/lacon_core.dir/core/model.cc.o.d"
  "/root/repo/src/core/state.cc" "src/CMakeFiles/lacon_core.dir/core/state.cc.o" "gcc" "src/CMakeFiles/lacon_core.dir/core/state.cc.o.d"
  "/root/repo/src/core/view.cc" "src/CMakeFiles/lacon_core.dir/core/view.cc.o" "gcc" "src/CMakeFiles/lacon_core.dir/core/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
