file(REMOVE_RECURSE
  "liblacon_core.a"
)
