file(REMOVE_RECURSE
  "CMakeFiles/lacon_core.dir/core/decision_rule.cc.o"
  "CMakeFiles/lacon_core.dir/core/decision_rule.cc.o.d"
  "CMakeFiles/lacon_core.dir/core/model.cc.o"
  "CMakeFiles/lacon_core.dir/core/model.cc.o.d"
  "CMakeFiles/lacon_core.dir/core/state.cc.o"
  "CMakeFiles/lacon_core.dir/core/state.cc.o.d"
  "CMakeFiles/lacon_core.dir/core/view.cc.o"
  "CMakeFiles/lacon_core.dir/core/view.cc.o.d"
  "liblacon_core.a"
  "liblacon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
