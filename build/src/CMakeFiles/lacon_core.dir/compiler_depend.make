# Empty compiler generated dependencies file for lacon_core.
# This may be replaced when dependencies are built.
