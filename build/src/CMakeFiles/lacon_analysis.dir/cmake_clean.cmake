file(REMOVE_RECURSE
  "CMakeFiles/lacon_analysis.dir/analysis/dot.cc.o"
  "CMakeFiles/lacon_analysis.dir/analysis/dot.cc.o.d"
  "CMakeFiles/lacon_analysis.dir/analysis/reports.cc.o"
  "CMakeFiles/lacon_analysis.dir/analysis/reports.cc.o.d"
  "liblacon_analysis.a"
  "liblacon_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacon_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
