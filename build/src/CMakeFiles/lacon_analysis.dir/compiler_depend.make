# Empty compiler generated dependencies file for lacon_analysis.
# This may be replaced when dependencies are built.
