file(REMOVE_RECURSE
  "liblacon_analysis.a"
)
