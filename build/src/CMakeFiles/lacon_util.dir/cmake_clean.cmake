file(REMOVE_RECURSE
  "CMakeFiles/lacon_util.dir/util/table.cc.o"
  "CMakeFiles/lacon_util.dir/util/table.cc.o.d"
  "liblacon_util.a"
  "liblacon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
