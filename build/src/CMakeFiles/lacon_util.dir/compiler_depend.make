# Empty compiler generated dependencies file for lacon_util.
# This may be replaced when dependencies are built.
