file(REMOVE_RECURSE
  "liblacon_util.a"
)
