# Empty compiler generated dependencies file for lacon_sim.
# This may be replaced when dependencies are built.
