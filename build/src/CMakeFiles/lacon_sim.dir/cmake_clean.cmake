file(REMOVE_RECURSE
  "CMakeFiles/lacon_sim.dir/sim/adversary.cc.o"
  "CMakeFiles/lacon_sim.dir/sim/adversary.cc.o.d"
  "CMakeFiles/lacon_sim.dir/sim/async_sim.cc.o"
  "CMakeFiles/lacon_sim.dir/sim/async_sim.cc.o.d"
  "CMakeFiles/lacon_sim.dir/sim/sync_sim.cc.o"
  "CMakeFiles/lacon_sim.dir/sim/sync_sim.cc.o.d"
  "liblacon_sim.a"
  "liblacon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
