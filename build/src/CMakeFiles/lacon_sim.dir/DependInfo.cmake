
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/adversary.cc" "src/CMakeFiles/lacon_sim.dir/sim/adversary.cc.o" "gcc" "src/CMakeFiles/lacon_sim.dir/sim/adversary.cc.o.d"
  "/root/repo/src/sim/async_sim.cc" "src/CMakeFiles/lacon_sim.dir/sim/async_sim.cc.o" "gcc" "src/CMakeFiles/lacon_sim.dir/sim/async_sim.cc.o.d"
  "/root/repo/src/sim/sync_sim.cc" "src/CMakeFiles/lacon_sim.dir/sim/sync_sim.cc.o" "gcc" "src/CMakeFiles/lacon_sim.dir/sim/sync_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacon_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
