file(REMOVE_RECURSE
  "liblacon_sim.a"
)
