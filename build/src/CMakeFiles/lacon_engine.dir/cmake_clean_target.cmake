file(REMOVE_RECURSE
  "liblacon_engine.a"
)
