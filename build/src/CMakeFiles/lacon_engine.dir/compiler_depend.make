# Empty compiler generated dependencies file for lacon_engine.
# This may be replaced when dependencies are built.
