
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/bivalence.cc" "src/CMakeFiles/lacon_engine.dir/engine/bivalence.cc.o" "gcc" "src/CMakeFiles/lacon_engine.dir/engine/bivalence.cc.o.d"
  "/root/repo/src/engine/explore.cc" "src/CMakeFiles/lacon_engine.dir/engine/explore.cc.o" "gcc" "src/CMakeFiles/lacon_engine.dir/engine/explore.cc.o.d"
  "/root/repo/src/engine/lemmas.cc" "src/CMakeFiles/lacon_engine.dir/engine/lemmas.cc.o" "gcc" "src/CMakeFiles/lacon_engine.dir/engine/lemmas.cc.o.d"
  "/root/repo/src/engine/spec.cc" "src/CMakeFiles/lacon_engine.dir/engine/spec.cc.o" "gcc" "src/CMakeFiles/lacon_engine.dir/engine/spec.cc.o.d"
  "/root/repo/src/engine/valence.cc" "src/CMakeFiles/lacon_engine.dir/engine/valence.cc.o" "gcc" "src/CMakeFiles/lacon_engine.dir/engine/valence.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacon_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
