file(REMOVE_RECURSE
  "CMakeFiles/lacon_engine.dir/engine/bivalence.cc.o"
  "CMakeFiles/lacon_engine.dir/engine/bivalence.cc.o.d"
  "CMakeFiles/lacon_engine.dir/engine/explore.cc.o"
  "CMakeFiles/lacon_engine.dir/engine/explore.cc.o.d"
  "CMakeFiles/lacon_engine.dir/engine/lemmas.cc.o"
  "CMakeFiles/lacon_engine.dir/engine/lemmas.cc.o.d"
  "CMakeFiles/lacon_engine.dir/engine/spec.cc.o"
  "CMakeFiles/lacon_engine.dir/engine/spec.cc.o.d"
  "CMakeFiles/lacon_engine.dir/engine/valence.cc.o"
  "CMakeFiles/lacon_engine.dir/engine/valence.cc.o.d"
  "liblacon_engine.a"
  "liblacon_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacon_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
