
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/adopt_commit.cc" "src/CMakeFiles/lacon_protocols.dir/protocols/adopt_commit.cc.o" "gcc" "src/CMakeFiles/lacon_protocols.dir/protocols/adopt_commit.cc.o.d"
  "/root/repo/src/protocols/benor.cc" "src/CMakeFiles/lacon_protocols.dir/protocols/benor.cc.o" "gcc" "src/CMakeFiles/lacon_protocols.dir/protocols/benor.cc.o.d"
  "/root/repo/src/protocols/coordinator.cc" "src/CMakeFiles/lacon_protocols.dir/protocols/coordinator.cc.o" "gcc" "src/CMakeFiles/lacon_protocols.dir/protocols/coordinator.cc.o.d"
  "/root/repo/src/protocols/early_deciding.cc" "src/CMakeFiles/lacon_protocols.dir/protocols/early_deciding.cc.o" "gcc" "src/CMakeFiles/lacon_protocols.dir/protocols/early_deciding.cc.o.d"
  "/root/repo/src/protocols/eig.cc" "src/CMakeFiles/lacon_protocols.dir/protocols/eig.cc.o" "gcc" "src/CMakeFiles/lacon_protocols.dir/protocols/eig.cc.o.d"
  "/root/repo/src/protocols/floodset.cc" "src/CMakeFiles/lacon_protocols.dir/protocols/floodset.cc.o" "gcc" "src/CMakeFiles/lacon_protocols.dir/protocols/floodset.cc.o.d"
  "/root/repo/src/protocols/kset.cc" "src/CMakeFiles/lacon_protocols.dir/protocols/kset.cc.o" "gcc" "src/CMakeFiles/lacon_protocols.dir/protocols/kset.cc.o.d"
  "/root/repo/src/protocols/round_protocol.cc" "src/CMakeFiles/lacon_protocols.dir/protocols/round_protocol.cc.o" "gcc" "src/CMakeFiles/lacon_protocols.dir/protocols/round_protocol.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
