file(REMOVE_RECURSE
  "liblacon_protocols.a"
)
