# Empty dependencies file for lacon_protocols.
# This may be replaced when dependencies are built.
