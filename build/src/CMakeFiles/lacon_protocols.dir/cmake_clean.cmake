file(REMOVE_RECURSE
  "CMakeFiles/lacon_protocols.dir/protocols/adopt_commit.cc.o"
  "CMakeFiles/lacon_protocols.dir/protocols/adopt_commit.cc.o.d"
  "CMakeFiles/lacon_protocols.dir/protocols/benor.cc.o"
  "CMakeFiles/lacon_protocols.dir/protocols/benor.cc.o.d"
  "CMakeFiles/lacon_protocols.dir/protocols/coordinator.cc.o"
  "CMakeFiles/lacon_protocols.dir/protocols/coordinator.cc.o.d"
  "CMakeFiles/lacon_protocols.dir/protocols/early_deciding.cc.o"
  "CMakeFiles/lacon_protocols.dir/protocols/early_deciding.cc.o.d"
  "CMakeFiles/lacon_protocols.dir/protocols/eig.cc.o"
  "CMakeFiles/lacon_protocols.dir/protocols/eig.cc.o.d"
  "CMakeFiles/lacon_protocols.dir/protocols/floodset.cc.o"
  "CMakeFiles/lacon_protocols.dir/protocols/floodset.cc.o.d"
  "CMakeFiles/lacon_protocols.dir/protocols/kset.cc.o"
  "CMakeFiles/lacon_protocols.dir/protocols/kset.cc.o.d"
  "CMakeFiles/lacon_protocols.dir/protocols/round_protocol.cc.o"
  "CMakeFiles/lacon_protocols.dir/protocols/round_protocol.cc.o.d"
  "liblacon_protocols.a"
  "liblacon_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacon_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
