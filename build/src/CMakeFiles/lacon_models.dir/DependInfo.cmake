
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/iis/iis_model.cc" "src/CMakeFiles/lacon_models.dir/models/iis/iis_model.cc.o" "gcc" "src/CMakeFiles/lacon_models.dir/models/iis/iis_model.cc.o.d"
  "/root/repo/src/models/mobile/mobile_model.cc" "src/CMakeFiles/lacon_models.dir/models/mobile/mobile_model.cc.o" "gcc" "src/CMakeFiles/lacon_models.dir/models/mobile/mobile_model.cc.o.d"
  "/root/repo/src/models/msgpass/msgpass_model.cc" "src/CMakeFiles/lacon_models.dir/models/msgpass/msgpass_model.cc.o" "gcc" "src/CMakeFiles/lacon_models.dir/models/msgpass/msgpass_model.cc.o.d"
  "/root/repo/src/models/msgpass/msgpass_sync_model.cc" "src/CMakeFiles/lacon_models.dir/models/msgpass/msgpass_sync_model.cc.o" "gcc" "src/CMakeFiles/lacon_models.dir/models/msgpass/msgpass_sync_model.cc.o.d"
  "/root/repo/src/models/sharedmem/sharedmem_model.cc" "src/CMakeFiles/lacon_models.dir/models/sharedmem/sharedmem_model.cc.o" "gcc" "src/CMakeFiles/lacon_models.dir/models/sharedmem/sharedmem_model.cc.o.d"
  "/root/repo/src/models/snapshot/snapshot_model.cc" "src/CMakeFiles/lacon_models.dir/models/snapshot/snapshot_model.cc.o" "gcc" "src/CMakeFiles/lacon_models.dir/models/snapshot/snapshot_model.cc.o.d"
  "/root/repo/src/models/synchronous/sync_model.cc" "src/CMakeFiles/lacon_models.dir/models/synchronous/sync_model.cc.o" "gcc" "src/CMakeFiles/lacon_models.dir/models/synchronous/sync_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
