file(REMOVE_RECURSE
  "CMakeFiles/lacon_models.dir/models/iis/iis_model.cc.o"
  "CMakeFiles/lacon_models.dir/models/iis/iis_model.cc.o.d"
  "CMakeFiles/lacon_models.dir/models/mobile/mobile_model.cc.o"
  "CMakeFiles/lacon_models.dir/models/mobile/mobile_model.cc.o.d"
  "CMakeFiles/lacon_models.dir/models/msgpass/msgpass_model.cc.o"
  "CMakeFiles/lacon_models.dir/models/msgpass/msgpass_model.cc.o.d"
  "CMakeFiles/lacon_models.dir/models/msgpass/msgpass_sync_model.cc.o"
  "CMakeFiles/lacon_models.dir/models/msgpass/msgpass_sync_model.cc.o.d"
  "CMakeFiles/lacon_models.dir/models/sharedmem/sharedmem_model.cc.o"
  "CMakeFiles/lacon_models.dir/models/sharedmem/sharedmem_model.cc.o.d"
  "CMakeFiles/lacon_models.dir/models/snapshot/snapshot_model.cc.o"
  "CMakeFiles/lacon_models.dir/models/snapshot/snapshot_model.cc.o.d"
  "CMakeFiles/lacon_models.dir/models/synchronous/sync_model.cc.o"
  "CMakeFiles/lacon_models.dir/models/synchronous/sync_model.cc.o.d"
  "liblacon_models.a"
  "liblacon_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacon_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
