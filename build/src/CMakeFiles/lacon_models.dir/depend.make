# Empty dependencies file for lacon_models.
# This may be replaced when dependencies are built.
