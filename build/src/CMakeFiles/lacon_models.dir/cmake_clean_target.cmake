file(REMOVE_RECURSE
  "liblacon_models.a"
)
