file(REMOVE_RECURSE
  "CMakeFiles/lacon_relation.dir/relation/graph.cc.o"
  "CMakeFiles/lacon_relation.dir/relation/graph.cc.o.d"
  "CMakeFiles/lacon_relation.dir/relation/similarity.cc.o"
  "CMakeFiles/lacon_relation.dir/relation/similarity.cc.o.d"
  "liblacon_relation.a"
  "liblacon_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacon_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
