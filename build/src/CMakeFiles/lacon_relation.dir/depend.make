# Empty dependencies file for lacon_relation.
# This may be replaced when dependencies are built.
