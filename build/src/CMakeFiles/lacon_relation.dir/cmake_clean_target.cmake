file(REMOVE_RECURSE
  "liblacon_relation.a"
)
