
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/complex.cc" "src/CMakeFiles/lacon_topology.dir/topology/complex.cc.o" "gcc" "src/CMakeFiles/lacon_topology.dir/topology/complex.cc.o.d"
  "/root/repo/src/topology/covering.cc" "src/CMakeFiles/lacon_topology.dir/topology/covering.cc.o" "gcc" "src/CMakeFiles/lacon_topology.dir/topology/covering.cc.o.d"
  "/root/repo/src/topology/simplex.cc" "src/CMakeFiles/lacon_topology.dir/topology/simplex.cc.o" "gcc" "src/CMakeFiles/lacon_topology.dir/topology/simplex.cc.o.d"
  "/root/repo/src/topology/solvability.cc" "src/CMakeFiles/lacon_topology.dir/topology/solvability.cc.o" "gcc" "src/CMakeFiles/lacon_topology.dir/topology/solvability.cc.o.d"
  "/root/repo/src/topology/tasks.cc" "src/CMakeFiles/lacon_topology.dir/topology/tasks.cc.o" "gcc" "src/CMakeFiles/lacon_topology.dir/topology/tasks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lacon_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacon_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lacon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
