file(REMOVE_RECURSE
  "CMakeFiles/lacon_topology.dir/topology/complex.cc.o"
  "CMakeFiles/lacon_topology.dir/topology/complex.cc.o.d"
  "CMakeFiles/lacon_topology.dir/topology/covering.cc.o"
  "CMakeFiles/lacon_topology.dir/topology/covering.cc.o.d"
  "CMakeFiles/lacon_topology.dir/topology/simplex.cc.o"
  "CMakeFiles/lacon_topology.dir/topology/simplex.cc.o.d"
  "CMakeFiles/lacon_topology.dir/topology/solvability.cc.o"
  "CMakeFiles/lacon_topology.dir/topology/solvability.cc.o.d"
  "CMakeFiles/lacon_topology.dir/topology/tasks.cc.o"
  "CMakeFiles/lacon_topology.dir/topology/tasks.cc.o.d"
  "liblacon_topology.a"
  "liblacon_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacon_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
