# Empty compiler generated dependencies file for lacon_topology.
# This may be replaced when dependencies are built.
