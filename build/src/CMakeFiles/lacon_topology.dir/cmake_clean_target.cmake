file(REMOVE_RECURSE
  "liblacon_topology.a"
)
