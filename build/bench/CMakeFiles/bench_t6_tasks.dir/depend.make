# Empty dependencies file for bench_t6_tasks.
# This may be replaced when dependencies are built.
