file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_tasks.dir/bench_t6_tasks.cc.o"
  "CMakeFiles/bench_t6_tasks.dir/bench_t6_tasks.cc.o.d"
  "bench_t6_tasks"
  "bench_t6_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
