# Empty compiler generated dependencies file for bench_t3_bivalent_run.
# This may be replaced when dependencies are built.
