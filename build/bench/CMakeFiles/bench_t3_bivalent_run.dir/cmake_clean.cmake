file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_bivalent_run.dir/bench_t3_bivalent_run.cc.o"
  "CMakeFiles/bench_t3_bivalent_run.dir/bench_t3_bivalent_run.cc.o.d"
  "bench_t3_bivalent_run"
  "bench_t3_bivalent_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_bivalent_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
