# Empty compiler generated dependencies file for bench_t4_sync_bound.
# This may be replaced when dependencies are built.
