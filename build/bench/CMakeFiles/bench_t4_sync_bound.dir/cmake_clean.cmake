file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_sync_bound.dir/bench_t4_sync_bound.cc.o"
  "CMakeFiles/bench_t4_sync_bound.dir/bench_t4_sync_bound.cc.o.d"
  "bench_t4_sync_bound"
  "bench_t4_sync_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_sync_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
