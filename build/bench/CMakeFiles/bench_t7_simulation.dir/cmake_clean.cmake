file(REMOVE_RECURSE
  "CMakeFiles/bench_t7_simulation.dir/bench_t7_simulation.cc.o"
  "CMakeFiles/bench_t7_simulation.dir/bench_t7_simulation.cc.o.d"
  "bench_t7_simulation"
  "bench_t7_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t7_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
