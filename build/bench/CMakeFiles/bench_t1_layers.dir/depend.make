# Empty dependencies file for bench_t1_layers.
# This may be replaced when dependencies are built.
