file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_layers.dir/bench_t1_layers.cc.o"
  "CMakeFiles/bench_t1_layers.dir/bench_t1_layers.cc.o.d"
  "bench_t1_layers"
  "bench_t1_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
