file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_connectivity.dir/bench_t2_connectivity.cc.o"
  "CMakeFiles/bench_t2_connectivity.dir/bench_t2_connectivity.cc.o.d"
  "bench_t2_connectivity"
  "bench_t2_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
