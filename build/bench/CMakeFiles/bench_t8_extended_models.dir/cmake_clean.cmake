file(REMOVE_RECURSE
  "CMakeFiles/bench_t8_extended_models.dir/bench_t8_extended_models.cc.o"
  "CMakeFiles/bench_t8_extended_models.dir/bench_t8_extended_models.cc.o.d"
  "bench_t8_extended_models"
  "bench_t8_extended_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_extended_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
