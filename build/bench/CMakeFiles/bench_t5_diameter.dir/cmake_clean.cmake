file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_diameter.dir/bench_t5_diameter.cc.o"
  "CMakeFiles/bench_t5_diameter.dir/bench_t5_diameter.cc.o.d"
  "bench_t5_diameter"
  "bench_t5_diameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
