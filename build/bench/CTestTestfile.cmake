# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_t1_layers "/root/repo/build/bench/bench_t1_layers" "--benchmark_min_time=0.01s")
set_tests_properties(smoke_bench_t1_layers PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_t2_connectivity "/root/repo/build/bench/bench_t2_connectivity" "--benchmark_min_time=0.01s")
set_tests_properties(smoke_bench_t2_connectivity PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_t3_bivalent_run "/root/repo/build/bench/bench_t3_bivalent_run" "--benchmark_min_time=0.01s")
set_tests_properties(smoke_bench_t3_bivalent_run PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_t4_sync_bound "/root/repo/build/bench/bench_t4_sync_bound" "--benchmark_min_time=0.01s")
set_tests_properties(smoke_bench_t4_sync_bound PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_t5_diameter "/root/repo/build/bench/bench_t5_diameter" "--benchmark_min_time=0.01s")
set_tests_properties(smoke_bench_t5_diameter PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_t6_tasks "/root/repo/build/bench/bench_t6_tasks" "--benchmark_min_time=0.01s")
set_tests_properties(smoke_bench_t6_tasks PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_t7_simulation "/root/repo/build/bench/bench_t7_simulation" "--benchmark_min_time=0.01s")
set_tests_properties(smoke_bench_t7_simulation PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_t8_extended_models "/root/repo/build/bench/bench_t8_extended_models" "--benchmark_min_time=0.01s")
set_tests_properties(smoke_bench_t8_extended_models PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_a1_ablation "/root/repo/build/bench/bench_a1_ablation" "--benchmark_min_time=0.01s")
set_tests_properties(smoke_bench_a1_ablation PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
