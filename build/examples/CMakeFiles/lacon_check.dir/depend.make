# Empty dependencies file for lacon_check.
# This may be replaced when dependencies are built.
