file(REMOVE_RECURSE
  "CMakeFiles/lacon_check.dir/lacon_check.cpp.o"
  "CMakeFiles/lacon_check.dir/lacon_check.cpp.o.d"
  "lacon_check"
  "lacon_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lacon_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
