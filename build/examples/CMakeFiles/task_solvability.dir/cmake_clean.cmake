file(REMOVE_RECURSE
  "CMakeFiles/task_solvability.dir/task_solvability.cpp.o"
  "CMakeFiles/task_solvability.dir/task_solvability.cpp.o.d"
  "task_solvability"
  "task_solvability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_solvability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
