# Empty dependencies file for task_solvability.
# This may be replaced when dependencies are built.
