# Empty compiler generated dependencies file for flp_explorer.
# This may be replaced when dependencies are built.
