file(REMOVE_RECURSE
  "CMakeFiles/flp_explorer.dir/flp_explorer.cpp.o"
  "CMakeFiles/flp_explorer.dir/flp_explorer.cpp.o.d"
  "flp_explorer"
  "flp_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flp_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
