file(REMOVE_RECURSE
  "CMakeFiles/benor_demo.dir/benor_demo.cpp.o"
  "CMakeFiles/benor_demo.dir/benor_demo.cpp.o.d"
  "benor_demo"
  "benor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
