# Empty dependencies file for benor_demo.
# This may be replaced when dependencies are built.
