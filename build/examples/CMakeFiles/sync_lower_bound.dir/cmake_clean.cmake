file(REMOVE_RECURSE
  "CMakeFiles/sync_lower_bound.dir/sync_lower_bound.cpp.o"
  "CMakeFiles/sync_lower_bound.dir/sync_lower_bound.cpp.o.d"
  "sync_lower_bound"
  "sync_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
