# Empty compiler generated dependencies file for sync_lower_bound.
# This may be replaced when dependencies are built.
