#!/usr/bin/env bash
# CI matrix: plain RelWithDebInfo, ThreadSanitizer and AddressSanitizer
# builds, each running the tier-1 test suite. TSan is mandatory for the
# parallel runtime: the layer cache, both interning arenas and the valence
# memo are shared across workers, and the equivalence tests in
# tests/runtime_test.cc drive them with 4 workers.
#
#   ./ci.sh            # all three configurations
#   ./ci.sh tsan       # just one: plain | tsan | asan
#
# LACON_THREADS is exported (default 4) so the parallel paths genuinely
# multi-thread even on small CI machines.
set -euo pipefail

cd "$(dirname "$0")"
JOBS="${JOBS:-$(nproc)}"
export LACON_THREADS="${LACON_THREADS:-4}"

run_config() {
  local name="$1" sanitize="$2"
  local dir="build-ci-$name"
  echo "=== [$name] configure (LACON_SANITIZE='$sanitize')"
  cmake -B "$dir" -S . -DLACON_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "=== [$name] build"
  cmake --build "$dir" -j "$JOBS" > /dev/null
  echo "=== [$name] ctest"
  # --timeout is a per-test backstop on top of the TIMEOUT properties set in
  # tests/CMakeLists.txt: a hung test fails loudly instead of wedging CI.
  ctest --test-dir "$dir" -j "$JOBS" --output-on-failure --timeout 300
  if [[ "$name" == "tsan" || "$name" == "asan" ]]; then
    # Fault-injection soak: re-run the runtime-facing suites with a seeded
    # fault plan so the injected-failure paths (task-body throws, simulated
    # allocation failure, budget trips) execute under the sanitizer. The
    # seed/rate env knobs only parameterize the dedicated FaultSoak tests;
    # the deterministic equivalence tests in the same binaries ignore them.
    echo "=== [$name] fault-injection soak" \
         "(seed=${LACON_FAULT_SEED:-20260805} rate=${LACON_FAULT_RATE:-0.05})"
    # trace_test rides along with tracing forced on: span buffers are the
    # one lock-free structure written concurrently by every worker, so the
    # soak doubles as the TSan/ASan proof for the publish protocol.
    # store_test rides along for the snapshot replay paths under ASan
    # (truncated/corrupt file parsing is exactly where ASan earns its keep);
    # service_test is the satellite TSan soak: concurrent socket clients
    # sharing one session's arenas, layer cache and valence memo.
    # simd_test rides along so the AVX2/NEON kernels and the scalar
    # reference run their randomized equivalence sweeps under both
    # sanitizers (ASan in particular audits the tail-masked lane reads).
    # LACON_SYMMETRY=on puts the orbit-canonicalization memos (core/sym.hpp,
    # shared mutable state under parallel interning) on the sanitized paths;
    # the symmetry contract says results cannot change, so the suites must
    # stay green with the quotient folding wherever a model permits it.
    for soak_bin in guard_test runtime_test fuzz_test trace_test \
                    store_test service_test simd_test sym_test; do
      LACON_FAULT_SEED="${LACON_FAULT_SEED:-20260805}" \
      LACON_FAULT_RATE="${LACON_FAULT_RATE:-0.05}" \
      LACON_TRACE=spans \
      LACON_SYMMETRY=on \
        "$dir/tests/$soak_bin" --gtest_brief=1
    done
    # Kill-and-recover soak: SIGKILL a WAL-enabled daemon mid-workload and
    # assert the restart serves byte-identical responses with zero
    # re-interns (examples/crash_recover.cc). The harness parent stays
    # single-threaded, so the fork is sanitizer-safe; the forked daemons
    # run the full threaded server under the sanitizer.
    echo "=== [$name] kill-and-recover soak (crash_recover)"
    "$dir/examples/crash_recover"
  fi
  if [[ "$name" == "plain" ]]; then
    # Forced-scalar lane: the SIMD dispatch contract says LACON_SIMD=scalar
    # changes speed, never results. Re-run the kernel-facing suites with the
    # knob pinned so the portable path stays green on hosts whose auto pick
    # is avx2/neon (regression coverage for scalar-only fallback hosts).
    echo "=== [$name] LACON_SIMD=scalar lane (kernel-facing suites)"
    for scalar_bin in simd_test core_test relation_test store_test; do
      LACON_SIMD=scalar "$dir/tests/$scalar_bin" --gtest_brief=1
    done
    # Docs drift gate: every LACON_* knob read anywhere in src/ must have a
    # README knob-table row, and every row must still be backed by a read
    # (bench/check_docs.py) — documentation for the operational surface
    # cannot silently fall behind the code.
    echo "=== [$name] docs drift gate (LACON_* knobs vs README table)"
    python3 bench/check_docs.py .
    # Perf trajectory: a small-size bench pass on the unsanitized build,
    # emitting one BENCH_*.json per experiment into bench_results/. Compare
    # against the committed reference under bench/baseline/ (regenerate it
    # with the same smoke budget when a PR intentionally moves performance).
    echo "=== [$name] bench smoke (BENCH_*.json -> bench_results/)"
    if ! BENCH_ARGS="--benchmark_min_time=0.01x" bench/run_all.sh "$dir" \
        bench_results > /dev/null; then
      echo "=== [$name] bench smoke FAILED" >&2
      exit 1
    fi
    ls bench_results/BENCH_*.json >/dev/null
    # Every bench emits a MetricsSnapshot sibling; a malformed or missing
    # snapshot fails CI before the regression gate looks at anything.
    echo "=== [$name] metrics snapshot validation (METRICS_*.json)"
    for m in bench_results/METRICS_*.json; do
      python3 -m json.tool "$m" > /dev/null
    done
    python3 bench/validate_metrics.py --kind metrics \
      bench_results/METRICS_*.json
    # Regression gate on the runtime-path experiments (t9: parallel runtime,
    # t10: arena intern contention): >25% real_time regression vs the
    # committed bench/baseline/ fails CI. Regenerate the baseline with the
    # same smoke budget when a PR intentionally moves performance. The gated
    # JSONs (plus their metrics snapshots) are copied to the repo top level
    # as CI artifacts.
    # t12 rides the same hard gate: its per-kernel A/B rows regress only if
    # a kernel or its dispatch got slower, never because a workload grew.
    echo "=== [$name] bench regression gate (t9+t10+t12 vs bench/baseline/)"
    for tag in t9_runtime t10_arena t12_simd; do
      python3 bench/compare_baseline.py \
        "bench/baseline/BENCH_$tag.json" "bench_results/BENCH_$tag.json" \
        --max-regression 0.25 \
        --baseline-metrics "bench/baseline/METRICS_$tag.json" \
        --metrics "bench_results/METRICS_$tag.json"
      cp "bench_results/BENCH_$tag.json" "BENCH_$tag.json"
      cp "bench_results/METRICS_$tag.json" "METRICS_$tag.json"
    done
    # Tracing-on smoke: one bench under LACON_TRACE=spans proves the span
    # path end-to-end — the Chrome trace must parse and contain complete
    # span events. Not part of the regression gate (span emission costs a
    # little; the gate above runs with tracing off, matching the baseline).
    echo "=== [$name] tracing-on bench smoke (t9 + TRACE/METRICS validation)"
    LACON_TRACE=spans \
    LACON_METRICS_FILE=bench_results/METRICS_t9_traced.json \
    LACON_TRACE_FILE=bench_results/TRACE_t9_traced.json \
      "$dir/bench/bench_t9_runtime" --benchmark_min_time=0.01x > /dev/null
    python3 bench/validate_metrics.py --kind trace \
      bench_results/TRACE_t9_traced.json
    python3 bench/validate_metrics.py --kind metrics \
      bench_results/METRICS_t9_traced.json
    cp bench_results/TRACE_t9_traced.json TRACE_t9_traced.json
    # Snapshot store gate: t11 measures file IO, which is noisier than the
    # in-memory t9/t10 paths, so its threshold is looser than the hard 25%
    # gate above. Regenerate bench/baseline/BENCH_t11_store.json with the
    # same smoke budget when the format or the workloads change.
    echo "=== [$name] bench regression gate (t11 store vs bench/baseline/)"
    python3 bench/compare_baseline.py \
      "bench/baseline/BENCH_t11_store.json" \
      "bench_results/BENCH_t11_store.json" \
      --max-regression 0.75 \
      --baseline-metrics "bench/baseline/METRICS_t11_store.json" \
      --metrics "bench_results/METRICS_t11_store.json"
    cp bench_results/BENCH_t11_store.json BENCH_t11_store.json
    cp bench_results/METRICS_t11_store.json METRICS_t11_store.json
    # t13 gates both symmetry modes: the quotient rows catch the
    # canonicalizer itself getting slower, the full rows catch the off-mode
    # paying for machinery it is supposed to bypass entirely. It shares
    # t11's looser threshold, not the hard 25% gate: the full-space rows
    # explore-and-classify hundreds of thousands of states per iteration,
    # and at smoke budgets that workload is allocator/cache noise on the
    # order of ±20% run to run.
    echo "=== [$name] bench regression gate (t13 symmetry vs bench/baseline/)"
    python3 bench/compare_baseline.py \
      "bench/baseline/BENCH_t13_symmetry.json" \
      "bench_results/BENCH_t13_symmetry.json" \
      --max-regression 0.75 \
      --baseline-metrics "bench/baseline/METRICS_t13_symmetry.json" \
      --metrics "bench_results/METRICS_t13_symmetry.json"
    cp bench_results/BENCH_t13_symmetry.json BENCH_t13_symmetry.json
    cp bench_results/METRICS_t13_symmetry.json METRICS_t13_symmetry.json
    # Persistence round trip (acceptance: snapshot round-trip is lossless).
    # A cold run saves a snapshot; a warm run loads it, reruns the identical
    # analysis and must (i) print byte-identical canonical output and (ii)
    # intern nothing new — store_roundtrip itself exits nonzero if the warm
    # arena miss counter moved. The snapshot ships as a CI artifact.
    echo "=== [$name] store round-trip lane (cold vs warm, byte-identical)"
    rm -rf store_artifacts && mkdir -p store_artifacts
    snap=store_artifacts/mobile.n3.t1.lacon.store
    "$dir/examples/store_roundtrip" --save "$snap" \
      --model mobile --n 3 --depth 2 --horizon 3 > store_artifacts/cold.txt
    "$dir/examples/store_roundtrip" --load "$snap" \
      --model mobile --n 3 --depth 2 --horizon 3 > store_artifacts/warm.txt
    cmp store_artifacts/cold.txt store_artifacts/warm.txt
    # laconrd smoke: daemon up, two concurrent clients — one starved by a
    # tiny budget (must answer "truncated" with its reason), one unbudgeted
    # (must answer "ok") — then a clean shutdown. SIGTERM, not SIGINT:
    # non-interactive shells start background jobs with SIGINT ignored, so
    # an INT-based smoke would hang here while working fine interactively.
    echo "=== [$name] laconrd smoke (2 concurrent clients + SIGTERM)"
    sock="/tmp/laconrd_ci_$$.sock"
    "$dir/examples/laconrd" --socket "$sock" &
    laconrd_pid=$!
    for _ in $(seq 50); do [[ -S "$sock" ]] && break; sleep 0.1; done
    [[ -S "$sock" ]]
    "$dir/examples/laconrd" --socket "$sock" --client \
      '{"id":"starved","model":"sharedmem","n":3,"depth":4,"budget_ms":1}' \
      > store_artifacts/starved.json &
    client_pid=$!
    "$dir/examples/laconrd" --socket "$sock" --client \
      '{"id":"free","model":"mobile","n":3,"depth":2,"query":"valence"}' \
      > store_artifacts/free.json
    wait "$client_pid"
    grep -q '"status":"truncated","truncation":"deadline"' \
      store_artifacts/starved.json
    grep -q '"status":"ok"' store_artifacts/free.json
    kill -TERM "$laconrd_pid"
    wait "$laconrd_pid"
    # Symmetry identity lane (DESIGN.md §15): the same request sequence
    # against a LACON_SYMMETRY=off and a LACON_SYMMETRY=on daemon must
    # produce identical mode-independent response fields (id/status/result;
    # the mode-dependent raw-arena "metrics" object is excluded), and the
    # on-daemon must prove it actually quotiented at least one session —
    # both asserted by bench/check_identity.py. msgpass is the full-symmetry
    # model among the served four; the rest pin down that the knob cannot
    # perturb trivially-symmetric sessions.
    echo "=== [$name] symmetry identity lane (LACON_SYMMETRY off vs on)"
    sym_reqs=(
      '{"id":1,"model":"msgpass","n":3,"query":"layers","depth":2}'
      '{"id":2,"model":"msgpass","n":3,"query":"valence","depth":1,"horizon":2}'
      '{"id":3,"model":"msgpass","n":3,"query":"diameter","depth":1}'
      '{"id":4,"model":"msgpass","n":3,"query":"similarity","depth":1}'
      '{"id":5,"model":"mobile","n":4,"query":"layers","depth":2}'
      '{"id":6,"model":"sharedmem","n":3,"query":"valence","depth":2,"horizon":2}'
      '{"id":7,"model":"sync","n":4,"t":2,"query":"layers","depth":2}'
    )
    for sym_mode in off on; do
      ssock="/tmp/laconrd_sym_${sym_mode}_$$.sock"
      LACON_SYMMETRY="$sym_mode" LACON_STORE=off LACON_WAL=off \
        "$dir/examples/laconrd" --socket "$ssock" &
      sym_pid=$!
      for _ in $(seq 50); do [[ -S "$ssock" ]] && break; sleep 0.1; done
      [[ -S "$ssock" ]]
      : > "store_artifacts/sym_$sym_mode.jsonl"
      for r in "${sym_reqs[@]}"; do
        "$dir/examples/laconrd" --socket "$ssock" --client "$r" \
          >> "store_artifacts/sym_$sym_mode.jsonl"
      done
      kill -TERM "$sym_pid"
      wait "$sym_pid"
      rm -f "$ssock"
    done
    python3 bench/check_identity.py \
      store_artifacts/sym_off.jsonl store_artifacts/sym_on.jsonl
    # Kill-and-recover lane (DESIGN.md §14): a WAL-enabled daemon serves a
    # workload, gets SIGKILLed with a request in flight, and the restart
    # over the same store dir must answer the identical requests with
    # byte-identical result payloads, zero re-interns (new_states == 0 on
    # every response) and arena.state_restored covering the replayed space
    # — all asserted by bench/check_recovery.py. The in-process variant of
    # this lane (examples/crash_recover.cc) also runs under TSan/ASan.
    echo "=== [$name] kill-and-recover lane (LACON_WAL=on + LACON_MMAP=on" \
         "+ SIGKILL under 4 concurrent clients)"
    "$dir/examples/crash_recover"
    wal_dir="store_artifacts/wal_recover"
    rm -rf "$wal_dir" && mkdir -p "$wal_dir"
    wal_reqs=(
      '{"id":1,"model":"mobile","n":3,"query":"layers","depth":2}'
      '{"id":2,"model":"mobile","n":3,"query":"valence","depth":2,"horizon":3}'
      '{"id":3,"model":"mobile","n":3,"query":"diameter","depth":2}'
      '{"id":4,"model":"mobile","n":3,"query":"similarity","depth":2}'
    )
    # LACON_MMAP=on is pinned explicitly (it is also the default): the
    # recovery daemon below must warm-start through the mmap loader, so
    # this lane proves the zero-copy path under the durability contract,
    # not just in unit tests.
    wsock="/tmp/laconrd_wal1_$$.sock"
    LACON_WAL=on LACON_MMAP=on LACON_STORE=off LACON_STORE_DIR="$wal_dir" \
      "$dir/examples/laconrd" --socket "$wsock" &
    wal_pid=$!
    for _ in $(seq 50); do [[ -S "$wsock" ]] && break; sleep 0.1; done
    [[ -S "$wsock" ]]
    : > "$wal_dir/before.jsonl"
    for r in "${wal_reqs[@]}"; do
      "$dir/examples/laconrd" --socket "$wsock" --client "$r" \
        >> "$wal_dir/before.jsonl"
    done
    # Four clients go in flight concurrently — three hammer the committed
    # session at distinct horizons (their commits coalesce into group-commit
    # rounds), one interns a bigger fresh session — then the SIGKILL lands
    # under all of them.
    inflight_reqs=(
      '{"id":5,"model":"mobile","n":3,"query":"valence","depth":2,"horizon":4}'
      '{"id":6,"model":"mobile","n":3,"query":"valence","depth":2,"horizon":5}'
      '{"id":7,"model":"mobile","n":3,"query":"layers","depth":3}'
      '{"id":8,"model":"mobile","n":4,"query":"layers","depth":3}'
    )
    inflight_pids=()
    for r in "${inflight_reqs[@]}"; do
      "$dir/examples/laconrd" --socket "$wsock" --timeout 10000 --client \
        "$r" > /dev/null 2>&1 &
      inflight_pids+=($!)
    done
    sleep 0.1
    kill -KILL "$wal_pid"
    wait "$wal_pid" && exit 1 || true  # must report the kill, not exit 0
    for p in "${inflight_pids[@]}"; do
      wait "$p" || true                # may have lost its connection: fine
    done
    # Restart over the same store dir on a fresh socket (the old socket
    # file survived the kill and would defeat the readiness probe).
    wsock2="/tmp/laconrd_wal2_$$.sock"
    LACON_WAL=on LACON_MMAP=on LACON_STORE=off LACON_STORE_DIR="$wal_dir" \
      "$dir/examples/laconrd" --socket "$wsock2" &
    wal_pid=$!
    for _ in $(seq 50); do [[ -S "$wsock2" ]] && break; sleep 0.1; done
    [[ -S "$wsock2" ]]
    : > "$wal_dir/after.jsonl"
    for r in "${wal_reqs[@]}"; do
      "$dir/examples/laconrd" --socket "$wsock2" --client "$r" \
        >> "$wal_dir/after.jsonl"
    done
    "$dir/examples/laconrd" --socket "$wsock2" --client \
      '{"id":9,"model":"mobile","n":3,"query":"layers","depth":2,"metrics":true}' \
      > "$wal_dir/probe.json"
    python3 bench/check_recovery.py \
      "$wal_dir/before.jsonl" "$wal_dir/after.jsonl" "$wal_dir/probe.json"
    kill -TERM "$wal_pid"
    wait "$wal_pid"
    rm -f "$wsock" "$wsock2"
  fi
}

configs=("${1:-all}")
if [[ "${configs[0]}" == "all" ]]; then configs=(plain tsan asan); fi

for c in "${configs[@]}"; do
  case "$c" in
    plain) run_config plain "" ;;
    tsan)  run_config tsan thread ;;
    asan)  run_config asan address ;;
    *) echo "unknown config '$c' (plain|tsan|asan|all)" >&2; exit 2 ;;
  esac
done
echo "=== CI matrix OK: ${configs[*]}"
