#!/usr/bin/env bash
# CI matrix: plain RelWithDebInfo, ThreadSanitizer and AddressSanitizer
# builds, each running the tier-1 test suite. TSan is mandatory for the
# parallel runtime: the layer cache, both interning arenas and the valence
# memo are shared across workers, and the equivalence tests in
# tests/runtime_test.cc drive them with 4 workers.
#
#   ./ci.sh            # all three configurations
#   ./ci.sh tsan       # just one: plain | tsan | asan
#
# LACON_THREADS is exported (default 4) so the parallel paths genuinely
# multi-thread even on small CI machines.
set -euo pipefail

cd "$(dirname "$0")"
JOBS="${JOBS:-$(nproc)}"
export LACON_THREADS="${LACON_THREADS:-4}"

run_config() {
  local name="$1" sanitize="$2"
  local dir="build-ci-$name"
  echo "=== [$name] configure (LACON_SANITIZE='$sanitize')"
  cmake -B "$dir" -S . -DLACON_SANITIZE="$sanitize" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  echo "=== [$name] build"
  cmake --build "$dir" -j "$JOBS" > /dev/null
  echo "=== [$name] ctest"
  ctest --test-dir "$dir" -j "$JOBS" --output-on-failure
  if [[ "$name" == "plain" ]]; then
    # Perf trajectory: a small-size bench pass on the unsanitized build,
    # emitting one BENCH_*.json per experiment into bench_results/. Compare
    # against the committed reference under bench/baseline/ (regenerate it
    # with the same smoke budget when a PR intentionally moves performance).
    echo "=== [$name] bench smoke (BENCH_*.json -> bench_results/)"
    BENCH_ARGS="--benchmark_min_time=0.01x" bench/run_all.sh "$dir" \
        bench_results > /dev/null
    ls bench_results/BENCH_*.json >/dev/null
  fi
}

configs=("${1:-all}")
if [[ "${configs[0]}" == "all" ]]; then configs=(plain tsan asan); fi

for c in "${configs[@]}"; do
  case "$c" in
    plain) run_config plain "" ;;
    tsan)  run_config tsan thread ;;
    asan)  run_config asan address ;;
    *) echo "unknown config '$c' (plain|tsan|asan|all)" >&2; exit 2 ;;
  esac
done
echo "=== CI matrix OK: ${configs[*]}"
